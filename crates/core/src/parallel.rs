//! Scoped-thread fan-out used by the pipeline.
//!
//! The pipeline's unit of work is coarse (one Hypergiant's stages, or one
//! whole snapshot), so a dependency-free worker pool over
//! [`std::thread::scope`] is all that is needed: workers pull item indices
//! from a shared atomic counter and results are reassembled in input
//! order, so output is byte-identical to a sequential map regardless of
//! scheduling.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

/// Environment variable overriding the worker count (unset means one
/// worker per available core).
pub const THREADS_ENV: &str = "OFFNET_THREADS";

/// An invalid `OFFNET_THREADS` value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadConfigError {
    /// The value did not parse as an unsigned integer.
    NotANumber(String),
    /// Zero workers is not a runnable configuration.
    Zero,
}

impl std::fmt::Display for ThreadConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadConfigError::NotANumber(v) => {
                write!(f, "{THREADS_ENV}={v:?} is not an unsigned integer")
            }
            ThreadConfigError::Zero => write!(f, "{THREADS_ENV}=0 requests zero workers"),
        }
    }
}

impl std::error::Error for ThreadConfigError {}

/// Parse one candidate `OFFNET_THREADS` value.
pub fn parse_thread_count(v: &str) -> Result<usize, ThreadConfigError> {
    match v.trim().parse::<usize>() {
        Ok(0) => Err(ThreadConfigError::Zero),
        Ok(n) => Ok(n),
        Err(_) => Err(ThreadConfigError::NotANumber(v.to_owned())),
    }
}

/// Read `OFFNET_THREADS` from the environment: `Ok(None)` when unset,
/// `Ok(Some(n))` for a positive integer, `Err` for anything else.
pub fn thread_count_from_env() -> Result<Option<usize>, ThreadConfigError> {
    match std::env::var(THREADS_ENV) {
        Ok(v) => parse_thread_count(&v).map(Some),
        Err(_) => Ok(None),
    }
}

/// Resolve the effective worker count: `OFFNET_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism.
///
/// An invalid value (non-numeric or zero) is *surfaced* — a warning on
/// stderr naming the bad value — before falling back, instead of being
/// silently swallowed as it once was.
pub fn default_thread_count() -> usize {
    match thread_count_from_env() {
        Ok(Some(n)) => n,
        Ok(None) => available_parallelism(),
        Err(e) => {
            eprintln!("warning: {e}; falling back to available parallelism");
            available_parallelism()
        }
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `threads` scoped workers, returning
/// results in input order.
///
/// Deterministic by construction: `f` sees each item exactly once and the
/// output position of a result is the index of its input item, so any
/// pure `f` yields the same `Vec` as `items.iter().map(f).collect()`.
/// With `threads <= 1` (or one item) the sequential path runs directly.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    local.push((i, f(item)));
                }
                collected.lock().append(&mut local);
            });
        }
    });

    let mut indexed = collected.into_inner();
    indexed.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// A task that panicked on every attempt inside
/// [`parallel_map_isolated`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// Input index of the failed item.
    pub index: usize,
    /// How many attempts were made (retries + 1).
    pub attempts: usize,
    /// The panic payload, when it was a string.
    pub message: String,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task {} panicked on all {} attempts: {}",
            self.index, self.attempts, self.message
        )
    }
}

impl std::error::Error for TaskError {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// [`parallel_map`] with per-task panic isolation: a panicking `f` is
/// retried up to `retries` more times, and a task that panics on every
/// attempt yields `Err(TaskError)` at its slot instead of poisoning the
/// scope and aborting the whole map.
///
/// Ordering and determinism match `parallel_map` exactly — for a
/// non-panicking pure `f`, the output is `items.iter().map(f)` with every
/// result wrapped in `Ok`.
pub fn parallel_map_isolated<T, R, F>(
    items: &[T],
    threads: usize,
    retries: usize,
    f: F,
) -> Vec<Result<R, TaskError>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    // Panics inside scoped workers would otherwise propagate out of
    // `scope` and kill the whole fan-out; catching per task keeps one
    // poisoned item from taking down its siblings.
    let run_one = |index: usize, item: &T| -> Result<R, TaskError> {
        let attempts = retries + 1;
        let mut last = String::new();
        for _ in 0..attempts {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))) {
                Ok(r) => return Ok(r),
                Err(payload) => last = panic_message(payload.as_ref()),
            }
        }
        Err(TaskError {
            index,
            attempts,
            message: last,
        })
    };
    let indexed: Vec<(usize, &T)> = items.iter().enumerate().collect();
    parallel_map(&indexed, threads, |&(i, item)| run_one(i, item))
}

/// A counting gate: the bounded-depth admission control of
/// [`bounded_pipeline`]. Permits are taken by the feeder and returned by
/// the ordered fold, so `fed - folded <= depth` at all times.
struct Gate {
    permits: std::sync::Mutex<usize>,
    cv: std::sync::Condvar,
}

impl Gate {
    fn new(n: usize) -> Self {
        Gate {
            permits: std::sync::Mutex::new(n),
            cv: std::sync::Condvar::new(),
        }
    }

    /// Wait for a permit. Returns `false` when the pipeline aborted while
    /// waiting (an error downstream), so the feeder stops instead of
    /// deadlocking against a fold that will never run.
    fn acquire(&self, abort: &AtomicBool) -> bool {
        let mut p = self.permits.lock().expect("gate mutex");
        loop {
            if abort.load(Ordering::Acquire) {
                return false;
            }
            if *p > 0 {
                *p -= 1;
                return true;
            }
            p = self.cv.wait(p).expect("gate mutex");
        }
    }

    fn release(&self) {
        *self.permits.lock().expect("gate mutex") += 1;
        self.cv.notify_one();
    }

    /// Wake every waiter so they observe the abort flag.
    fn wake_all(&self) {
        let _hold = self.permits.lock().expect("gate mutex");
        self.cv.notify_all();
    }
}

/// A bounded-depth produce/consume pipeline with a strictly ordered fold.
///
/// `feed` runs on the calling thread and pushes work items through the
/// provided closure; each item is stamped with its push index. Up to
/// `workers` scoped threads run `work(index, item)` concurrently, and a
/// dedicated fold thread applies `fold(index, result)` **in push order**
/// (a reorder buffer holds early finishers). The gate bounds the number
/// of items that have been fed but not yet folded to `depth`, so with
/// item-sized payloads peak memory is `depth × item`, independent of the
/// input length.
///
/// Determinism: because the fold observes results in push order, any pure
/// `work` yields a fold sequence identical to the serial
/// `for (i, t) in items { fold(i, work(i, t)?)? }` — which is exactly
/// what runs inline (no threads at all) when `workers <= 1`.
///
/// The push closure returns `false` once the pipeline has aborted (some
/// `work` or `fold` returned an error); the feeder should stop then. The
/// first error observed is returned; `feed`'s own error is returned only
/// when the pipeline itself saw none.
pub fn bounded_pipeline<T, R, E, Feed, Work, Fold>(
    workers: usize,
    depth: usize,
    feed: Feed,
    work: Work,
    mut fold: Fold,
) -> Result<(), E>
where
    T: Send,
    R: Send,
    E: Send,
    Feed: FnOnce(&mut dyn FnMut(T) -> bool) -> Result<(), E>,
    Work: Fn(usize, T) -> Result<R, E> + Sync,
    Fold: FnMut(usize, R) -> Result<(), E> + Send,
{
    if workers <= 1 {
        // Inline serial path: the escape hatch that makes
        // `OFFNET_THREADS=1` runs thread-free and trivially deterministic.
        let mut first_err: Option<E> = None;
        let mut idx = 0usize;
        let feed_res = feed(
            &mut |item| match work(idx, item).and_then(|r| fold(idx, r)) {
                Ok(()) => {
                    idx += 1;
                    true
                }
                Err(e) => {
                    first_err = Some(e);
                    false
                }
            },
        );
        return match first_err {
            Some(e) => Err(e),
            None => feed_res,
        };
    }

    let depth = depth.max(1);
    let gate = Gate::new(depth);
    let abort = AtomicBool::new(false);
    let first_err: Mutex<Option<E>> = Mutex::new(None);
    let (task_tx, task_rx) = mpsc::channel::<(usize, T)>();
    let task_rx = Mutex::new(task_rx);
    let (res_tx, res_rx) = mpsc::channel::<(usize, Result<R, E>)>();

    let feed_res = std::thread::scope(|scope| {
        let gate = &gate;
        let abort = &abort;
        let first_err = &first_err;
        let task_rx = &task_rx;
        let work = &work;
        for _ in 0..workers {
            let res_tx = res_tx.clone();
            scope.spawn(move || loop {
                let msg = task_rx.lock().recv();
                let Ok((i, item)) = msg else { break };
                if abort.load(Ordering::Acquire) {
                    continue; // drain the queue without computing
                }
                if res_tx.send((i, work(i, item))).is_err() {
                    break;
                }
            });
        }
        drop(res_tx); // workers hold the remaining clones

        let fold = &mut fold;
        scope.spawn(move || {
            let mut next = 0usize;
            let mut pending: BTreeMap<usize, R> = BTreeMap::new();
            let fail = |e: E| {
                let mut slot = first_err.lock();
                if slot.is_none() {
                    *slot = Some(e);
                }
                abort.store(true, Ordering::Release);
                gate.wake_all();
            };
            for (i, r) in res_rx.iter() {
                if abort.load(Ordering::Acquire) {
                    continue; // drain so workers never block on send
                }
                match r {
                    Err(e) => fail(e),
                    Ok(r) => {
                        pending.insert(i, r);
                        // Fold every newly contiguous result, releasing
                        // one permit per item actually retired.
                        while let Some(r) = pending.remove(&next) {
                            match fold(next, r) {
                                Ok(()) => {
                                    next += 1;
                                    gate.release();
                                }
                                Err(e) => {
                                    fail(e);
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        });

        let mut pushed = 0usize;
        let feed_res = feed(&mut |item| {
            if !gate.acquire(abort) {
                return false;
            }
            if task_tx.send((pushed, item)).is_err() {
                return false;
            }
            pushed += 1;
            true
        });
        drop(task_tx); // close the queue: workers, then the fold, exit
        feed_res
    });

    match first_err.into_inner() {
        Some(e) => Err(e),
        None => feed_res,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, 8, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_for_any_thread_count() {
        let items: Vec<String> = (0..97).map(|i| format!("item-{i}")).collect();
        let expect: Vec<usize> = items.iter().map(|s| s.len()).collect();
        for threads in [0, 1, 2, 3, 7, 64] {
            assert_eq!(parallel_map(&items, threads, |s| s.len()), expect);
        }
    }

    #[test]
    fn visits_each_item_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let calls: Vec<AtomicU32> = (0..256).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..256).collect();
        parallel_map(&items, 4, |&i| calls[i].fetch_add(1, Ordering::SeqCst));
        assert!(calls.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(parallel_map(&[42u8], 8, |&x| x + 1), vec![43]);
    }

    #[test]
    fn default_thread_count_is_positive() {
        assert!(default_thread_count() >= 1);
    }

    #[test]
    fn thread_count_parse_paths() {
        assert_eq!(parse_thread_count("4"), Ok(4));
        assert_eq!(parse_thread_count(" 16 "), Ok(16));
        assert_eq!(parse_thread_count("0"), Err(ThreadConfigError::Zero));
        assert_eq!(
            parse_thread_count("many"),
            Err(ThreadConfigError::NotANumber("many".to_owned()))
        );
        assert_eq!(
            parse_thread_count("-2"),
            Err(ThreadConfigError::NotANumber("-2".to_owned()))
        );
        assert_eq!(
            parse_thread_count("3.5"),
            Err(ThreadConfigError::NotANumber("3.5".to_owned()))
        );
        // Errors render the offending value for the warning line.
        let msg = ThreadConfigError::NotANumber("many".to_owned()).to_string();
        assert!(
            msg.contains("OFFNET_THREADS") && msg.contains("many"),
            "{msg}"
        );
    }

    #[test]
    fn isolated_map_matches_plain_map_when_nothing_panics() {
        let items: Vec<u64> = (0..500).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3).collect();
        for threads in [1, 4] {
            let out = parallel_map_isolated(&items, threads, 1, |&x| x * 3);
            let ok: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(ok, expect);
        }
    }

    #[test]
    fn panicking_task_degrades_to_error_without_killing_siblings() {
        let items: Vec<u32> = (0..64).collect();
        for threads in [1, 4] {
            let out = parallel_map_isolated(&items, threads, 1, |&x| {
                if x == 13 {
                    panic!("poisoned item {x}");
                }
                x + 1
            });
            assert_eq!(out.len(), 64);
            for (i, r) in out.iter().enumerate() {
                if i == 13 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.index, 13);
                    assert_eq!(e.attempts, 2);
                    assert!(e.message.contains("poisoned item 13"), "{}", e.message);
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u32 + 1);
                }
            }
        }
    }

    fn run_pipeline(
        workers: usize,
        depth: usize,
        n: u64,
    ) -> Result<Vec<(usize, u64)>, &'static str> {
        let mut folded = Vec::new();
        bounded_pipeline(
            workers,
            depth,
            |push| {
                for i in 0..n {
                    if !push(i) {
                        break;
                    }
                }
                Ok(())
            },
            |_, item: u64| {
                // Skew the finish order: early items run longest.
                for _ in 0..(n - item) * 500 {
                    std::hint::black_box(item);
                }
                Ok(item * 3)
            },
            |i, r| {
                folded.push((i, r));
                Ok(())
            },
        )?;
        Ok(folded)
    }

    #[test]
    fn bounded_pipeline_folds_in_push_order_at_any_width() {
        let expect: Vec<(usize, u64)> = (0..200u64).map(|i| (i as usize, i * 3)).collect();
        for (workers, depth) in [(1, 1), (2, 3), (4, 6), (8, 2)] {
            assert_eq!(
                run_pipeline(workers, depth, 200).unwrap(),
                expect,
                "workers={workers} depth={depth}"
            );
        }
    }

    #[test]
    fn bounded_pipeline_bounds_in_flight_items() {
        // fed - folded can never exceed depth: sample the gauge from the
        // workers, where every in-flight item passes through.
        let fed = AtomicUsize::new(0);
        let folded_n = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let depth = 3usize;
        bounded_pipeline::<_, _, (), _, _, _>(
            4,
            depth,
            |push| {
                for i in 0..300u32 {
                    if !push(i) {
                        break;
                    }
                    // Counted only once admitted through the gate, so the
                    // worker-side gauge can undercount but never overshoot.
                    fed.fetch_add(1, Ordering::SeqCst);
                }
                Ok(())
            },
            |_, item| {
                let gauge = fed.load(Ordering::SeqCst) - folded_n.load(Ordering::SeqCst);
                peak.fetch_max(gauge, Ordering::SeqCst);
                Ok(item)
            },
            |_, _| {
                folded_n.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(folded_n.load(Ordering::SeqCst), 300);
        let peak = peak.load(Ordering::SeqCst);
        assert!(peak <= depth, "peak in-flight {peak} exceeds depth {depth}");
    }

    #[test]
    fn bounded_pipeline_propagates_errors_and_stops_feeding() {
        for workers in [1, 4] {
            let mut folded = 0usize;
            let res = bounded_pipeline(
                workers,
                2,
                |push| {
                    for i in 0..10_000u32 {
                        if !push(i) {
                            break;
                        }
                    }
                    Ok(())
                },
                |_, item| {
                    if item == 5 {
                        Err("work failed at 5")
                    } else {
                        Ok(item)
                    }
                },
                |_, _| {
                    folded += 1;
                    Ok(())
                },
            );
            assert_eq!(res, Err("work failed at 5"), "workers={workers}");
            assert!(folded <= 5, "fold ran past the failed item: {folded}");
        }

        // Fold errors surface the same way.
        let res = bounded_pipeline(
            4,
            4,
            |push| {
                for i in 0..100u32 {
                    if !push(i) {
                        break;
                    }
                }
                Ok(())
            },
            |_, item| Ok(item),
            |i, _| {
                if i == 7 {
                    Err("fold failed at 7")
                } else {
                    Ok(())
                }
            },
        );
        assert_eq!(res, Err("fold failed at 7"));
    }

    #[test]
    fn transient_panic_is_retried() {
        use std::sync::atomic::AtomicU32;
        let first_try = AtomicU32::new(0);
        let out = parallel_map_isolated(&[7u32], 1, 2, |&x| {
            if first_try.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("flaky once");
            }
            x
        });
        assert_eq!(out[0].as_ref().copied(), Ok(7));
        assert_eq!(first_try.load(Ordering::SeqCst), 2);
    }
}
