//! Scoped-thread fan-out used by the pipeline.
//!
//! The pipeline's unit of work is coarse (one Hypergiant's stages, or one
//! whole snapshot), so a dependency-free worker pool over
//! [`std::thread::scope`] is all that is needed: workers pull item indices
//! from a shared atomic counter and results are reassembled in input
//! order, so output is byte-identical to a sequential map regardless of
//! scheduling.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker count (unset means one
/// worker per available core).
pub const THREADS_ENV: &str = "OFFNET_THREADS";

/// An invalid `OFFNET_THREADS` value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadConfigError {
    /// The value did not parse as an unsigned integer.
    NotANumber(String),
    /// Zero workers is not a runnable configuration.
    Zero,
}

impl std::fmt::Display for ThreadConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadConfigError::NotANumber(v) => {
                write!(f, "{THREADS_ENV}={v:?} is not an unsigned integer")
            }
            ThreadConfigError::Zero => write!(f, "{THREADS_ENV}=0 requests zero workers"),
        }
    }
}

impl std::error::Error for ThreadConfigError {}

/// Parse one candidate `OFFNET_THREADS` value.
pub fn parse_thread_count(v: &str) -> Result<usize, ThreadConfigError> {
    match v.trim().parse::<usize>() {
        Ok(0) => Err(ThreadConfigError::Zero),
        Ok(n) => Ok(n),
        Err(_) => Err(ThreadConfigError::NotANumber(v.to_owned())),
    }
}

/// Read `OFFNET_THREADS` from the environment: `Ok(None)` when unset,
/// `Ok(Some(n))` for a positive integer, `Err` for anything else.
pub fn thread_count_from_env() -> Result<Option<usize>, ThreadConfigError> {
    match std::env::var(THREADS_ENV) {
        Ok(v) => parse_thread_count(&v).map(Some),
        Err(_) => Ok(None),
    }
}

/// Resolve the effective worker count: `OFFNET_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism.
///
/// An invalid value (non-numeric or zero) is *surfaced* — a warning on
/// stderr naming the bad value — before falling back, instead of being
/// silently swallowed as it once was.
pub fn default_thread_count() -> usize {
    match thread_count_from_env() {
        Ok(Some(n)) => n,
        Ok(None) => available_parallelism(),
        Err(e) => {
            eprintln!("warning: {e}; falling back to available parallelism");
            available_parallelism()
        }
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `threads` scoped workers, returning
/// results in input order.
///
/// Deterministic by construction: `f` sees each item exactly once and the
/// output position of a result is the index of its input item, so any
/// pure `f` yields the same `Vec` as `items.iter().map(f).collect()`.
/// With `threads <= 1` (or one item) the sequential path runs directly.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    local.push((i, f(item)));
                }
                collected.lock().append(&mut local);
            });
        }
    });

    let mut indexed = collected.into_inner();
    indexed.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// A task that panicked on every attempt inside
/// [`parallel_map_isolated`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// Input index of the failed item.
    pub index: usize,
    /// How many attempts were made (retries + 1).
    pub attempts: usize,
    /// The panic payload, when it was a string.
    pub message: String,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task {} panicked on all {} attempts: {}",
            self.index, self.attempts, self.message
        )
    }
}

impl std::error::Error for TaskError {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// [`parallel_map`] with per-task panic isolation: a panicking `f` is
/// retried up to `retries` more times, and a task that panics on every
/// attempt yields `Err(TaskError)` at its slot instead of poisoning the
/// scope and aborting the whole map.
///
/// Ordering and determinism match `parallel_map` exactly — for a
/// non-panicking pure `f`, the output is `items.iter().map(f)` with every
/// result wrapped in `Ok`.
pub fn parallel_map_isolated<T, R, F>(
    items: &[T],
    threads: usize,
    retries: usize,
    f: F,
) -> Vec<Result<R, TaskError>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    // Panics inside scoped workers would otherwise propagate out of
    // `scope` and kill the whole fan-out; catching per task keeps one
    // poisoned item from taking down its siblings.
    let run_one = |index: usize, item: &T| -> Result<R, TaskError> {
        let attempts = retries + 1;
        let mut last = String::new();
        for _ in 0..attempts {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))) {
                Ok(r) => return Ok(r),
                Err(payload) => last = panic_message(payload.as_ref()),
            }
        }
        Err(TaskError {
            index,
            attempts,
            message: last,
        })
    };
    let indexed: Vec<(usize, &T)> = items.iter().enumerate().collect();
    parallel_map(&indexed, threads, |&(i, item)| run_one(i, item))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, 8, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_for_any_thread_count() {
        let items: Vec<String> = (0..97).map(|i| format!("item-{i}")).collect();
        let expect: Vec<usize> = items.iter().map(|s| s.len()).collect();
        for threads in [0, 1, 2, 3, 7, 64] {
            assert_eq!(parallel_map(&items, threads, |s| s.len()), expect);
        }
    }

    #[test]
    fn visits_each_item_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let calls: Vec<AtomicU32> = (0..256).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..256).collect();
        parallel_map(&items, 4, |&i| calls[i].fetch_add(1, Ordering::SeqCst));
        assert!(calls.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(parallel_map(&[42u8], 8, |&x| x + 1), vec![43]);
    }

    #[test]
    fn default_thread_count_is_positive() {
        assert!(default_thread_count() >= 1);
    }

    #[test]
    fn thread_count_parse_paths() {
        assert_eq!(parse_thread_count("4"), Ok(4));
        assert_eq!(parse_thread_count(" 16 "), Ok(16));
        assert_eq!(parse_thread_count("0"), Err(ThreadConfigError::Zero));
        assert_eq!(
            parse_thread_count("many"),
            Err(ThreadConfigError::NotANumber("many".to_owned()))
        );
        assert_eq!(
            parse_thread_count("-2"),
            Err(ThreadConfigError::NotANumber("-2".to_owned()))
        );
        assert_eq!(
            parse_thread_count("3.5"),
            Err(ThreadConfigError::NotANumber("3.5".to_owned()))
        );
        // Errors render the offending value for the warning line.
        let msg = ThreadConfigError::NotANumber("many".to_owned()).to_string();
        assert!(
            msg.contains("OFFNET_THREADS") && msg.contains("many"),
            "{msg}"
        );
    }

    #[test]
    fn isolated_map_matches_plain_map_when_nothing_panics() {
        let items: Vec<u64> = (0..500).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3).collect();
        for threads in [1, 4] {
            let out = parallel_map_isolated(&items, threads, 1, |&x| x * 3);
            let ok: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(ok, expect);
        }
    }

    #[test]
    fn panicking_task_degrades_to_error_without_killing_siblings() {
        let items: Vec<u32> = (0..64).collect();
        for threads in [1, 4] {
            let out = parallel_map_isolated(&items, threads, 1, |&x| {
                if x == 13 {
                    panic!("poisoned item {x}");
                }
                x + 1
            });
            assert_eq!(out.len(), 64);
            for (i, r) in out.iter().enumerate() {
                if i == 13 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.index, 13);
                    assert_eq!(e.attempts, 2);
                    assert!(e.message.contains("poisoned item 13"), "{}", e.message);
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u32 + 1);
                }
            }
        }
    }

    #[test]
    fn transient_panic_is_retried() {
        use std::sync::atomic::AtomicU32;
        let first_try = AtomicU32::new(0);
        let out = parallel_map_isolated(&[7u32], 1, 2, |&x| {
            if first_try.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("flaky once");
            }
            x
        });
        assert_eq!(out[0].as_ref().copied(), Ok(7));
        assert_eq!(first_try.load(Ordering::SeqCst), 2);
    }
}
