//! §4.3 — candidate off-net identification.
//!
//! An IP outside the HG's own ASes is a candidate off-net when its valid
//! end-entity certificate (a) has an Organization matching the HG name and
//! (b) lists only dNSNames already seen in the HG's on-net certificates.
//! Requirement (b) filters certificate-provider cases (Cloudflare issuing
//! for customers) and certificates shared with other organizations.
//!
//! Additionally, the documented Cloudflare filter (§7) drops certificates
//! carrying the `(ssl|sni)N.cloudflaressl.com` universal-SSL SAN marker.
//!
//! Both filters run on the corpus's interned columns: (b) is a
//! sorted-merge over the certificate's SAN span, and the Cloudflare
//! marker is a per-host flag classified once at corpus build.

use crate::corpus::SnapshotCorpus;
use crate::tls_fingerprint::TlsFingerprint;
use netsim::AsId;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use x509::Fingerprint;

/// Candidate off-nets for one HG in one snapshot.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    /// Candidate IPs with the certificate fingerprint each serves.
    pub ips: Vec<(u32, Fingerprint)>,
    /// Candidate ASes (IPs mapped through IP-to-AS; MOAS keeps all).
    pub ases: BTreeSet<AsId>,
    /// IPs whose certificate matched but could not be mapped to an AS.
    pub unmapped_ips: usize,
    /// Per-certificate IP counts (Figure 11's "IP groups").
    pub cert_ip_groups: BTreeMap<Fingerprint, u32>,
}

/// Whether a SAN matches Cloudflare's free-certificate marker
/// `(ssl|sni)[0-9]*.cloudflaressl.com`.
pub fn is_cloudflare_free_san(name: &str) -> bool {
    let Some(prefix) = name.strip_suffix(".cloudflaressl.com") else {
        return false;
    };
    let digits_start = prefix
        .strip_prefix("ssl")
        .or_else(|| prefix.strip_prefix("sni"));
    match digits_start {
        Some(rest) => rest.chars().all(|c| c.is_ascii_digit()),
        None => false,
    }
}

/// Options for candidate identification, exposing the ablations.
#[derive(Debug, Clone)]
pub struct CandidateOptions {
    /// Apply the all-dNSNames-on-net rule (§4.3). Disabling reproduces the
    /// naive organization-only match for the ablation study.
    pub require_san_subset: bool,
    /// Apply the Cloudflare universal-SSL SAN filter (§7).
    pub cloudflare_filter: bool,
}

impl Default for CandidateOptions {
    fn default() -> Self {
        Self {
            require_san_subset: true,
            cloudflare_filter: true,
        }
    }
}

/// Identify candidate off-net IPs/ASes for one HG from the corpus
/// certificates listed in `cert_idx` (indices into `corpus.valids` —
/// pass a per-HG pre-index or [`SnapshotCorpus::all_cert_indices`]).
pub fn find_candidates(
    fp: &TlsFingerprint,
    hg_ases: &HashSet<AsId>,
    corpus: &SnapshotCorpus,
    cert_idx: &[u32],
    options: &CandidateOptions,
) -> CandidateSet {
    let mut out = CandidateSet::default();
    for &i in cert_idx {
        let vc = &corpus.valids[i as usize];
        if !fp.org_matches(vc.leaf.subject().organization()) {
            continue;
        }
        if options.require_san_subset && !fp.covers_all(corpus.sans(i)) {
            continue;
        }
        if options.cloudflare_filter && corpus.cert_has_cloudflare_free_san(i) {
            continue;
        }
        // Off-net: the IP maps outside the HG's own ASes.
        let origins = corpus.ip_to_as.lookup(vc.ip);
        if origins.iter().any(|a| hg_ases.contains(a)) {
            continue;
        }
        if origins.is_empty() {
            out.unmapped_ips += 1;
            continue;
        }
        out.ips.push((vc.ip, vc.leaf.fingerprint()));
        *out.cert_ip_groups.entry(vc.leaf.fingerprint()).or_insert(0) += 1;
        for a in origins {
            out.ases.insert(*a);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgsim::{Hg, HgWorld, ScenarioConfig};
    use scanner::{observe_snapshot, ScanEngine};
    use std::sync::OnceLock;

    fn world() -> &'static HgWorld {
        static W: OnceLock<HgWorld> = OnceLock::new();
        W.get_or_init(|| HgWorld::generate(ScenarioConfig::small()))
    }

    fn candidates_for(hg: Hg, t: usize, options: &CandidateOptions) -> CandidateSet {
        let w = world();
        let obs = observe_snapshot(w, &ScanEngine::certigo(), t).unwrap();
        let corpus = SnapshotCorpus::build(&obs, w.pki().root_store(), &Default::default(), None);
        let hg_ases: HashSet<AsId> = w
            .org_db()
            .ases_matching(hg.spec().keyword)
            .into_iter()
            .collect();
        let idx = corpus.all_cert_indices();
        let fp = crate::tls_fingerprint::learn_tls_fingerprints(
            hg.spec().keyword,
            &hg_ases,
            &corpus,
            &idx,
        );
        find_candidates(&fp, &hg_ases, &corpus, &idx, options)
    }

    #[test]
    fn cloudflare_san_marker_detection() {
        assert!(is_cloudflare_free_san("sni12345.cloudflaressl.com"));
        assert!(is_cloudflare_free_san("ssl9.cloudflaressl.com"));
        assert!(is_cloudflare_free_san("ssl.cloudflaressl.com"));
        assert!(!is_cloudflare_free_san("www.cloudflaressl.com"));
        assert!(!is_cloudflare_free_san("sni12345.cloudflare.com"));
        assert!(!is_cloudflare_free_san("example.com"));
        assert!(!is_cloudflare_free_san("snixyz.cloudflaressl.com"));
    }

    #[test]
    fn google_candidates_track_ground_truth() {
        let set = candidates_for(Hg::Google, 30, &Default::default());
        let truth = world().true_offnet_ases(Hg::Google, 30);
        assert!(!set.ases.is_empty());
        let found = truth.iter().filter(|a| set.ases.contains(a)).count();
        let recall = found as f64 / truth.len() as f64;
        assert!(recall > 0.85, "recall {recall}");
        // Precision against truth + mgmt placements: candidates may also
        // include CloudMgmt boxes (killed later by header confirmation).
        assert!(set.ases.len() as f64 <= truth.len() as f64 * 1.5);
    }

    #[test]
    fn san_subset_rule_filters_shared_and_bait_certs() {
        let strict = candidates_for(Hg::Google, 30, &Default::default());
        let naive = candidates_for(
            Hg::Google,
            30,
            &CandidateOptions {
                require_san_subset: false,
                cloudflare_filter: true,
            },
        );
        // The naive org-only match picks up joint-venture and keyword-bait
        // certificates the strict rule rejects.
        assert!(
            naive.ases.len() > strict.ases.len(),
            "naive {} !> strict {}",
            naive.ases.len(),
            strict.ases.len()
        );
    }

    #[test]
    fn cloudflare_filter_removes_free_customers() {
        let with = candidates_for(Hg::Cloudflare, 30, &Default::default());
        let without = candidates_for(
            Hg::Cloudflare,
            30,
            &CandidateOptions {
                require_san_subset: true,
                cloudflare_filter: false,
            },
        );
        assert!(
            without.ases.len() > with.ases.len(),
            "filter had no effect: {} vs {}",
            without.ases.len(),
            with.ases.len()
        );
        // Paid customer certificates survive the filter, so Cloudflare
        // still *appears* to have candidates (the paper's false positive).
        assert!(!with.ases.is_empty());
    }

    #[test]
    fn onnet_ips_are_excluded() {
        let w = world();
        let set = candidates_for(Hg::Google, 30, &Default::default());
        let google_as = w.hg_as(Hg::Google);
        assert!(!set.ases.contains(&google_as));
    }

    #[test]
    fn google_cert_groups_concentrated() {
        let set = candidates_for(Hg::Google, 30, &Default::default());
        let total: u32 = set.cert_ip_groups.values().sum();
        let max = set.cert_ip_groups.values().max().copied().unwrap_or(0);
        assert!(
            f64::from(max) / f64::from(total) > 0.5,
            "top group {max}/{total}"
        );
    }
}
