//! §4.5 — confirming candidates with HTTP(S) header fingerprints.
//!
//! This stage runs entirely on interned symbols: banners are indexed
//! into columnar per-port tables of `(HeaderNameSym, HeaderValueSym)`
//! pairs, and the learned string fingerprints are compiled once per
//! snapshot (against the frozen interner, before the parallel per-HG
//! fan-out) into symbol sets so matching is integer comparisons.

use crate::candidates::CandidateSet;
use crate::headers::HeaderFingerprints;
use intern::{FrozenInterner, HeaderNameSym, HeaderValueSym, Interner};
use netsim::{AsId, IpToAsMap};
use scanner::HttpScanSnapshot;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Which banner corpuses must match for confirmation (Figure 4's series).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfirmMode {
    /// Certificates and (HTTP or HTTPS) headers — the paper's default.
    HttpOrHttps,
    /// Certificates and (HTTP and HTTPS) headers.
    HttpAndHttps,
}

/// A banner port: the scan streams §4.5 confirms against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    Http80,
    Https443,
}

impl Port {
    pub const ALL: [Port; 2] = [Port::Http80, Port::Https443];

    fn idx(self) -> usize {
        match self {
            Port::Http80 => 0,
            Port::Https443 => 1,
        }
    }
}

/// Banner-stream quality counters: how many records the indexer saw and
/// how many it quarantined, by defect.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BannerQuality {
    /// Banner records across both ports before indexing.
    pub records_seen: usize,
    /// Records dropped for a header value past the size cap.
    pub oversized: usize,
    /// Records dropped for control bytes / U+FFFD in a header value.
    pub mojibake: usize,
    /// Repeat records for an IP already indexed on the same port.
    pub duplicate_ip: usize,
}

impl BannerQuality {
    pub fn quarantined_total(&self) -> usize {
        self.oversized + self.mojibake + self.duplicate_ip
    }

    /// Sum another quality block into this one (per-shard banner indexes
    /// partition the record stream, so their counters add exactly).
    pub fn merge(&mut self, other: &BannerQuality) {
        self.records_seen += other.records_seen;
        self.oversized += other.oversized;
        self.mojibake += other.mojibake;
        self.duplicate_ip += other.duplicate_ip;
    }
}

/// A header value is corrupt when it carries a control byte (other than
/// horizontal tab) or the U+FFFD replacement character — no simulated or
/// real banner legitimately does.
fn value_is_mojibake(v: &str) -> bool {
    v.chars()
        .any(|c| c == '\u{fffd}' || (c.is_control() && c != '\t'))
}

/// One port's banners, laid out columnarly: a flat pair column plus a
/// row-offset column, with an IP→row map on top. Rows are immutable once
/// built, so the whole table is shared read-only across workers.
#[derive(Debug)]
struct PortTable {
    ip_to_row: HashMap<u32, u32>,
    /// `pairs[offsets[row] .. offsets[row + 1]]` is row `row`'s headers.
    offsets: Vec<u32>,
    pairs: Vec<(HeaderNameSym, HeaderValueSym)>,
}

impl Default for PortTable {
    fn default() -> Self {
        Self {
            ip_to_row: HashMap::new(),
            offsets: vec![0],
            pairs: Vec::new(),
        }
    }
}

impl PortTable {
    fn push_row(&mut self, ip: u32, headers: &[(HeaderNameSym, HeaderValueSym)]) {
        let row = (self.offsets.len() - 1) as u32;
        self.ip_to_row.insert(ip, row);
        self.pairs.extend_from_slice(headers);
        self.offsets.push(self.pairs.len() as u32);
    }

    fn get(&self, ip: u32) -> Option<&[(HeaderNameSym, HeaderValueSym)]> {
        let row = *self.ip_to_row.get(&ip)? as usize;
        Some(&self.pairs[self.offsets[row] as usize..self.offsets[row + 1] as usize])
    }

    fn is_empty(&self) -> bool {
        self.ip_to_row.is_empty()
    }

    fn ips(&self) -> impl Iterator<Item = u32> + '_ {
        self.ip_to_row.keys().copied()
    }

    fn heap_bytes(&self) -> usize {
        self.ip_to_row.len() * (std::mem::size_of::<u32>() * 2 + 4)
            + self.offsets.len() * std::mem::size_of::<u32>()
            + self.pairs.len() * std::mem::size_of::<(HeaderNameSym, HeaderValueSym)>()
    }
}

/// Indexed banners of one snapshot.
///
/// Corrupt records (oversized or mojibake header values) and duplicate
/// rows are quarantined at build time — counted in [`BannerQuality`] and
/// kept out of the index — so §4.5 only ever matches against well-formed
/// banners. For duplicates the first record wins, mirroring §4.1's
/// first-record-wins IP dedup. Because values are interned, corruption
/// is classified once per *distinct* value over the pool, then looked up
/// per record.
#[derive(Debug, Default)]
pub struct BannerIndex {
    tables: [PortTable; 2],
    pub quality: BannerQuality,
}

impl BannerIndex {
    pub fn build(
        http80: Option<&HttpScanSnapshot>,
        https443: Option<&HttpScanSnapshot>,
        interner: &Interner,
    ) -> Self {
        // Classify each distinct header value once; records then check a
        // flag per symbol instead of re-scanning the bytes.
        let n_vals = interner.header_values.len();
        let mut oversized = vec![false; n_vals];
        let mut mojibake = vec![false; n_vals];
        for (sym, s) in interner.header_values.iter() {
            let i = sym.index() as usize;
            oversized[i] = s.len() > scanner::MAX_HEADER_VALUE_LEN;
            mojibake[i] = value_is_mojibake(s);
        }

        let mut idx = Self::default();
        for (port, snap) in [(Port::Http80, http80), (Port::Https443, https443)] {
            if let Some(s) = snap {
                Self::index_stream(
                    &mut idx.tables[port.idx()],
                    s,
                    &mut idx.quality,
                    &oversized,
                    &mojibake,
                );
            }
        }
        idx
    }

    fn index_stream(
        table: &mut PortTable,
        snap: &HttpScanSnapshot,
        quality: &mut BannerQuality,
        oversized: &[bool],
        mojibake: &[bool],
    ) {
        let mut seen: HashSet<u32> = HashSet::new();
        for r in &snap.records {
            quality.records_seen += 1;
            if !seen.insert(r.ip) {
                quality.duplicate_ip += 1;
                continue;
            }
            // Per record, the first defect found decides the quarantine
            // reason (matching the injector's per-record exclusivity).
            if r.headers.iter().any(|(_, v)| oversized[v.index() as usize]) {
                quality.oversized += 1;
                continue;
            }
            if r.headers.iter().any(|(_, v)| mojibake[v.index() as usize]) {
                quality.mojibake += 1;
                continue;
            }
            table.push_row(r.ip, &r.headers);
        }
    }

    /// The indexed banner row for `ip` on `port`, if one survived
    /// quarantine.
    pub fn get(&self, port: Port, ip: u32) -> Option<&[(HeaderNameSym, HeaderValueSym)]> {
        self.tables[port.idx()].get(ip)
    }

    /// Every IP with an indexed (post-quarantine) row on `port`, in
    /// arbitrary order — delta-engine evidence digests sort afterwards.
    pub fn indexed_ips(&self, port: Port) -> impl Iterator<Item = u32> + '_ {
        self.tables[port.idx()].ips()
    }

    /// Whether any HTTPS banners exist at all (they don't before the
    /// corpuses added HTTPS data).
    pub fn has_https(&self) -> bool {
        !self.tables[Port::Https443.idx()].is_empty()
    }

    /// Bytes held by the columnar tables (excluding the interner pools,
    /// which are accounted separately).
    pub fn heap_bytes(&self) -> usize {
        self.tables.iter().map(PortTable::heap_bytes).sum()
    }
}

/// Confirmed off-nets for one HG in one snapshot.
#[derive(Debug, Clone, Default)]
pub struct ConfirmedSet {
    pub ases: BTreeSet<AsId>,
    pub ips: Vec<u32>,
}

/// Edge CDNs whose headers take priority in multi-HG conflicts (§7
/// "Reverse Proxies and Cache Misses": Akamai and Cloudflare edges in
/// front of other origins).
const EDGE_PRIORITY: &[&str] = &["akamai", "cloudflare"];

/// One HG's header fingerprint compiled against a snapshot's frozen
/// interner: names as a sorted symbol set, and each `(name, prefix)`
/// pair expanded to the sorted set of value symbols the prefix matches.
#[derive(Debug, Clone)]
pub struct CompiledFingerprint {
    pub keyword: String,
    /// Sorted name symbols from the source fingerprint's name-only list.
    names: Vec<HeaderNameSym>,
    /// Per source pair: the name symbol plus every value symbol in the
    /// pool whose string starts with the source prefix (sorted).
    pairs: Vec<(HeaderNameSym, Vec<HeaderValueSym>)>,
    /// Whether the *source* fingerprint was empty (§7 "Missing
    /// Headers") — distinct from compiling to no resolvable symbols.
    empty: bool,
}

impl CompiledFingerprint {
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// Does this banner row match? Equivalent to the string model's
    /// "name in names, or pair name equal and value has prefix".
    pub fn matches(&self, row: &[(HeaderNameSym, HeaderValueSym)]) -> bool {
        row.iter().any(|(n, v)| {
            self.names.binary_search(n).is_ok()
                || self
                    .pairs
                    .iter()
                    .any(|(pn, vals)| pn == n && vals.binary_search(v).is_ok())
        })
    }
}

/// All HGs' fingerprints compiled for one snapshot. Built once before
/// the per-HG fan-out; workers share it read-only.
#[derive(Debug, Default)]
pub struct CompiledFingerprints {
    fps: Vec<CompiledFingerprint>,
    by_keyword: HashMap<String, u32>,
    /// Indices of the [`EDGE_PRIORITY`] fingerprints.
    edge: Vec<u32>,
}

impl CompiledFingerprints {
    /// Compile every learned fingerprint against `interner`. Names (and
    /// pair names) absent from the snapshot's pool can never match a
    /// banner and are dropped; prefix pairs are expanded by a single
    /// pass over the value pool.
    pub fn compile(src: &HeaderFingerprints, interner: &FrozenInterner) -> Self {
        let mut keywords: Vec<&str> = src.iter().map(|fp| fp.keyword.as_str()).collect();
        keywords.sort_unstable();

        let mut out = Self::default();
        // (fp index, pair index, prefix) for the pool expansion pass.
        let mut pending: Vec<(usize, usize, String)> = Vec::new();
        for kw in keywords {
            let fp = src.get(kw).expect("keyword from iterator");
            let mut compiled = CompiledFingerprint {
                keyword: fp.keyword.clone(),
                names: Vec::new(),
                pairs: Vec::new(),
                empty: fp.names.is_empty() && fp.pairs.is_empty(),
            };
            for name in &fp.names {
                if let Some(sym) = interner.header_names().get(name) {
                    compiled.names.push(sym);
                }
            }
            compiled.names.sort_unstable();
            let fp_idx = out.fps.len();
            for (name, prefix) in &fp.pairs {
                if let Some(sym) = interner.header_names().get(name) {
                    pending.push((fp_idx, compiled.pairs.len(), prefix.clone()));
                    compiled.pairs.push((sym, Vec::new()));
                }
            }
            if EDGE_PRIORITY.contains(&fp.keyword.as_str()) {
                out.edge.push(fp_idx as u32);
            }
            out.by_keyword.insert(fp.keyword.clone(), fp_idx as u32);
            out.fps.push(compiled);
        }

        // One pass over the value pool expands every prefix at once.
        // Pool iteration is in symbol order, so the sets come out sorted.
        for (sym, s) in interner.header_values().iter() {
            for (fp_idx, pair_idx, prefix) in &pending {
                if s.starts_with(prefix.as_str()) {
                    out.fps[*fp_idx].pairs[*pair_idx].1.push(sym);
                }
            }
        }
        out
    }

    pub fn get(&self, keyword: &str) -> Option<&CompiledFingerprint> {
        self.by_keyword.get(keyword).map(|&i| &self.fps[i as usize])
    }

    /// Does any edge CDN's fingerprint match this banner row?
    pub fn edge_matches(&self, row: &[(HeaderNameSym, HeaderValueSym)]) -> bool {
        self.edge.iter().any(|&i| self.fps[i as usize].matches(row))
    }
}

/// Confirm a candidate set using compiled header fingerprints.
///
/// A candidate IP is confirmed when its banner(s) match the HG's header
/// fingerprint under `mode`. When the banner *also* matches an edge CDN's
/// fingerprint (and the HG itself is not that CDN), the edge wins and the
/// candidate is rejected — the response came through a reverse proxy.
pub fn confirm_candidates(
    keyword: &str,
    candidates: &CandidateSet,
    fps: &CompiledFingerprints,
    banners: &BannerIndex,
    ip_to_as: &IpToAsMap,
    mode: ConfirmMode,
) -> ConfirmedSet {
    let keyword = keyword.to_ascii_lowercase();
    let mut out = ConfirmedSet::default();
    let Some(fp) = fps.get(&keyword) else {
        return out;
    };
    if fp.is_empty() {
        // No usable header fingerprint (§7 "Missing Headers") — nothing
        // can be confirmed for this HG.
        return out;
    }
    let hg_is_edge = EDGE_PRIORITY.contains(&keyword.as_str());
    for (ip, _cert) in &candidates.ips {
        // One matcher over both ports: Some(matched) if a banner exists.
        // Reverse-proxy conflict: edge headers win over origin headers.
        let m = Port::ALL.map(|port| {
            banners
                .get(port, *ip)
                .map(|row| fp.matches(row) && (hg_is_edge || !fps.edge_matches(row)))
        });
        let confirmed = match mode {
            ConfirmMode::HttpOrHttps => m.contains(&Some(true)),
            ConfirmMode::HttpAndHttps => {
                // Require agreement on every banner that exists; HTTPS-only
                // epochs degrade to HTTP-only data.
                match (m[0], m[1]) {
                    (Some(a), Some(b)) => a && b,
                    (Some(a), None) | (None, Some(a)) => a,
                    (None, None) => false,
                }
            }
        };
        if confirmed {
            out.ips.push(*ip);
            for a in ip_to_as.lookup(*ip) {
                out.ases.insert(*a);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::HeaderFingerprint;
    use netsim::{BgpNoiseConfig, MonthlyRib, Topology, TopologyConfig};
    use scanner::HttpRecord;
    use x509::Fingerprint;

    fn tiny_map() -> (Topology, IpToAsMap) {
        let t = Topology::generate(&TopologyConfig::small(7));
        let rib = MonthlyRib::build(
            &t,
            30,
            &BgpNoiseConfig {
                hijack_rate: 0.0,
                moas_rate: 0.0,
                flap_rate: 0.0,
            },
            7,
        );
        let m = IpToAsMap::build(&rib);
        (t, m)
    }

    fn fps() -> HeaderFingerprints {
        let mut fps = HeaderFingerprints::default();
        fps.insert(HeaderFingerprint {
            keyword: "google".into(),
            pairs: vec![("server".into(), "gvs".into())],
            names: vec![],
            support: 10,
        });
        fps.insert(HeaderFingerprint {
            keyword: "akamai".into(),
            pairs: vec![("server".into(), "AkamaiGHost".into())],
            names: vec![],
            support: 10,
        });
        fps.insert(HeaderFingerprint {
            keyword: "apple".into(),
            pairs: vec![],
            names: vec!["cdnuuid".into()],
            support: 10,
        });
        fps
    }

    /// Intern a test banner, lowercasing names as the scanner does.
    fn rec(interner: &mut Interner, ip: u32, hs: &[(&str, &str)]) -> HttpRecord {
        HttpRecord {
            ip,
            headers: hs
                .iter()
                .map(|(n, v)| {
                    (
                        interner.header_names.intern(&n.to_ascii_lowercase()),
                        interner.header_values.intern(v),
                    )
                })
                .collect(),
        }
    }

    fn snap(port: u16, records: Vec<HttpRecord>) -> HttpScanSnapshot {
        HttpScanSnapshot {
            engine: scanner::EngineId::Rapid7,
            snapshot_idx: 30,
            port,
            records,
            health: Default::default(),
        }
    }

    fn banner_index(interner: &mut Interner, entries: &[(u32, &[(&str, &str)])]) -> BannerIndex {
        let records = entries
            .iter()
            .map(|(ip, hs)| rec(interner, *ip, hs))
            .collect();
        BannerIndex::build(Some(&snap(80, records)), None, interner)
    }

    fn candidate(ips: &[u32]) -> CandidateSet {
        CandidateSet {
            ips: ips.iter().map(|&ip| (ip, Fingerprint([0u8; 32]))).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn matching_banner_confirms() {
        let (topo, map) = tiny_map();
        let ip = topo.ases()[100].prefixes[0].addr(1);
        let mut interner = Interner::default();
        let banners = banner_index(&mut interner, &[(ip, &[("Server", "gvs 1.0")])]);
        let compiled = CompiledFingerprints::compile(&fps(), &interner.freeze());
        let set = confirm_candidates(
            "google",
            &candidate(&[ip]),
            &compiled,
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert_eq!(set.ips, vec![ip]);
        assert!(set.ases.contains(&topo.ases()[100].id));
    }

    #[test]
    fn non_matching_banner_rejected() {
        let (topo, map) = tiny_map();
        let ip = topo.ases()[100].prefixes[0].addr(1);
        let mut interner = Interner::default();
        let banners = banner_index(&mut interner, &[(ip, &[("Server", "nginx")])]);
        let compiled = CompiledFingerprints::compile(&fps(), &interner.freeze());
        let set = confirm_candidates(
            "google",
            &candidate(&[ip]),
            &compiled,
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert!(set.ips.is_empty());
    }

    #[test]
    fn edge_priority_rejects_origin_attribution() {
        let (topo, map) = tiny_map();
        let ip = topo.ases()[100].prefixes[0].addr(1);
        // Banner carries BOTH apple-ish and akamai headers (cache miss
        // through an Akamai edge) — apple must not be confirmed, akamai is.
        let mut interner = Interner::default();
        let banners = banner_index(
            &mut interner,
            &[(ip, &[("Server", "AkamaiGHost"), ("CDNUUID", "abc-123")])],
        );
        let compiled = CompiledFingerprints::compile(&fps(), &interner.freeze());
        let apple = confirm_candidates(
            "apple",
            &candidate(&[ip]),
            &compiled,
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert!(apple.ips.is_empty(), "apple must lose to the akamai edge");
        let akamai = confirm_candidates(
            "akamai",
            &candidate(&[ip]),
            &compiled,
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert_eq!(akamai.ips, vec![ip]);
    }

    #[test]
    fn missing_banner_means_unconfirmed() {
        let (topo, map) = tiny_map();
        let ip = topo.ases()[100].prefixes[0].addr(1);
        let mut interner = Interner::default();
        let banners = banner_index(&mut interner, &[]);
        let compiled = CompiledFingerprints::compile(&fps(), &interner.freeze());
        let set = confirm_candidates(
            "google",
            &candidate(&[ip]),
            &compiled,
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert!(set.ips.is_empty());
    }

    #[test]
    fn and_mode_requires_agreement() {
        let (topo, map) = tiny_map();
        let ip = topo.ases()[100].prefixes[0].addr(1);
        let mut interner = Interner::default();
        let http = snap(80, vec![rec(&mut interner, ip, &[("Server", "gvs 1.0")])]);
        let https = snap(443, vec![rec(&mut interner, ip, &[("Server", "nginx")])]);
        let banners = BannerIndex::build(Some(&http), Some(&https), &interner);
        let compiled = CompiledFingerprints::compile(&fps(), &interner.freeze());
        let or_mode = confirm_candidates(
            "google",
            &candidate(&[ip]),
            &compiled,
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert_eq!(or_mode.ips.len(), 1);
        let and_mode = confirm_candidates(
            "google",
            &candidate(&[ip]),
            &compiled,
            &banners,
            &map,
            ConfirmMode::HttpAndHttps,
        );
        assert!(and_mode.ips.is_empty());
    }

    #[test]
    fn corrupt_and_duplicate_banners_are_quarantined() {
        let mut interner = Interner::default();
        let records = vec![
            rec(&mut interner, 1, &[("Server", "gvs 1.0")]),
            // Duplicate row for IP 1: first record wins.
            rec(&mut interner, 1, &[("Server", "nginx")]),
            // Mojibake value.
            rec(&mut interner, 2, &[("Server", "gvs\u{fffd}\u{0007}")]),
            // Oversized value.
            rec(
                &mut interner,
                3,
                &[("Server", &"A".repeat(scanner::MAX_HEADER_VALUE_LEN + 1))],
            ),
            rec(&mut interner, 4, &[("Server", "clean\tvalue")]),
        ];
        let idx = BannerIndex::build(Some(&snap(80, records)), None, &interner);
        assert_eq!(idx.quality.records_seen, 5);
        assert_eq!(idx.quality.duplicate_ip, 1);
        assert_eq!(idx.quality.mojibake, 1);
        assert_eq!(idx.quality.oversized, 1);
        assert_eq!(idx.quality.quarantined_total(), 3);
        let row = idx.get(Port::Http80, 1).unwrap();
        assert_eq!(
            interner.header_values.resolve(row[0].1),
            "gvs 1.0",
            "first record wins"
        );
        assert!(
            idx.get(Port::Http80, 2).is_none(),
            "mojibake banner must not index"
        );
        assert!(
            idx.get(Port::Http80, 3).is_none(),
            "oversized banner must not index"
        );
        assert!(
            idx.get(Port::Http80, 4).is_some(),
            "tab is a legal header byte"
        );
    }

    #[test]
    fn empty_fingerprint_confirms_nothing() {
        let (topo, map) = tiny_map();
        let ip = topo.ases()[100].prefixes[0].addr(1);
        let mut interner = Interner::default();
        let banners = banner_index(&mut interner, &[(ip, &[("X-Hulu-Request-Id", "1")])]);
        let mut fps = HeaderFingerprints::default();
        fps.insert(HeaderFingerprint {
            keyword: "hulu".into(),
            pairs: vec![],
            names: vec![],
            support: 0,
        });
        let compiled = CompiledFingerprints::compile(&fps, &interner.freeze());
        let set = confirm_candidates(
            "hulu",
            &candidate(&[ip]),
            &compiled,
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert!(set.ips.is_empty());
    }
}
