//! §4.5 — confirming candidates with HTTP(S) header fingerprints.

use crate::candidates::CandidateSet;
use crate::headers::HeaderFingerprints;
use netsim::{AsId, IpToAsMap};
use scanner::HttpScanSnapshot;
use std::collections::{BTreeSet, HashMap};

/// Which banner corpuses must match for confirmation (Figure 4's series).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfirmMode {
    /// Certificates and (HTTP or HTTPS) headers — the paper's default.
    HttpOrHttps,
    /// Certificates and (HTTP and HTTPS) headers.
    HttpAndHttps,
}

/// Indexed banners of one snapshot.
#[derive(Debug, Default)]
pub struct BannerIndex {
    http80: HashMap<u32, Vec<(String, String)>>,
    https443: HashMap<u32, Vec<(String, String)>>,
}

impl BannerIndex {
    pub fn build(http80: Option<&HttpScanSnapshot>, https443: Option<&HttpScanSnapshot>) -> Self {
        let mut idx = Self::default();
        if let Some(s) = http80 {
            for r in &s.records {
                idx.http80.insert(r.ip, r.headers.clone());
            }
        }
        if let Some(s) = https443 {
            for r in &s.records {
                idx.https443.insert(r.ip, r.headers.clone());
            }
        }
        idx
    }

    pub fn http80(&self, ip: u32) -> Option<&Vec<(String, String)>> {
        self.http80.get(&ip)
    }

    pub fn https443(&self, ip: u32) -> Option<&Vec<(String, String)>> {
        self.https443.get(&ip)
    }

    /// Whether any HTTPS banners exist at all (they don't before the
    /// corpuses added HTTPS data).
    pub fn has_https(&self) -> bool {
        !self.https443.is_empty()
    }
}

/// Confirmed off-nets for one HG in one snapshot.
#[derive(Debug, Clone, Default)]
pub struct ConfirmedSet {
    pub ases: BTreeSet<AsId>,
    pub ips: Vec<u32>,
}

/// Edge CDNs whose headers take priority in multi-HG conflicts (§7
/// "Reverse Proxies and Cache Misses": Akamai and Cloudflare edges in
/// front of other origins).
const EDGE_PRIORITY: &[&str] = &["akamai", "cloudflare"];

/// Confirm a candidate set using header fingerprints.
///
/// A candidate IP is confirmed when its banner(s) match the HG's header
/// fingerprint under `mode`. When the banner *also* matches an edge CDN's
/// fingerprint (and the HG itself is not that CDN), the edge wins and the
/// candidate is rejected — the response came through a reverse proxy.
pub fn confirm_candidates(
    keyword: &str,
    candidates: &CandidateSet,
    fps: &HeaderFingerprints,
    banners: &BannerIndex,
    ip_to_as: &IpToAsMap,
    mode: ConfirmMode,
) -> ConfirmedSet {
    let keyword = keyword.to_ascii_lowercase();
    let mut out = ConfirmedSet::default();
    let Some(fp) = fps.get(&keyword) else {
        return out;
    };
    if fp.is_empty() {
        // No usable header fingerprint (§7 "Missing Headers") — nothing
        // can be confirmed for this HG.
        return out;
    }
    for (ip, _cert) in &candidates.ips {
        let http = banners.http80(*ip);
        let https = banners.https443(*ip);
        let match_one = |h: Option<&Vec<(String, String)>>| -> Option<bool> {
            h.map(|headers| {
                if !fp.matches(headers) {
                    return false;
                }
                // Reverse-proxy conflict: edge headers win.
                if !EDGE_PRIORITY.contains(&keyword.as_str()) {
                    let others = fps.matching_keywords(headers);
                    if others.iter().any(|k| EDGE_PRIORITY.contains(k)) {
                        return false;
                    }
                }
                true
            })
        };
        let m_http = match_one(http);
        let m_https = match_one(https);
        let confirmed = match mode {
            ConfirmMode::HttpOrHttps => m_http == Some(true) || m_https == Some(true),
            ConfirmMode::HttpAndHttps => {
                // Require agreement on every banner that exists; HTTPS-only
                // epochs degrade to HTTP-only data.
                match (m_http, m_https) {
                    (Some(a), Some(b)) => a && b,
                    (Some(a), None) | (None, Some(a)) => a,
                    (None, None) => false,
                }
            }
        };
        if confirmed {
            out.ips.push(*ip);
            for a in ip_to_as.lookup(*ip) {
                out.ases.insert(*a);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::HeaderFingerprint;
    use netsim::{BgpNoiseConfig, MonthlyRib, Topology, TopologyConfig};
    use scanner::HttpRecord;
    use x509::Fingerprint;

    fn tiny_map() -> (Topology, IpToAsMap) {
        let t = Topology::generate(&TopologyConfig::small(7));
        let rib = MonthlyRib::build(
            &t,
            30,
            &BgpNoiseConfig {
                hijack_rate: 0.0,
                moas_rate: 0.0,
                flap_rate: 0.0,
            },
            7,
        );
        let m = IpToAsMap::build(&rib);
        (t, m)
    }

    fn fps() -> HeaderFingerprints {
        let mut fps = HeaderFingerprints::default();
        fps.insert(HeaderFingerprint {
            keyword: "google".into(),
            pairs: vec![("server".into(), "gvs".into())],
            names: vec![],
            support: 10,
        });
        fps.insert(HeaderFingerprint {
            keyword: "akamai".into(),
            pairs: vec![("server".into(), "AkamaiGHost".into())],
            names: vec![],
            support: 10,
        });
        fps.insert(HeaderFingerprint {
            keyword: "apple".into(),
            pairs: vec![],
            names: vec!["cdnuuid".into()],
            support: 10,
        });
        fps
    }

    fn banner_index(entries: &[(u32, &[(&str, &str)])]) -> BannerIndex {
        let snap = HttpScanSnapshot {
            engine: scanner::EngineId::Rapid7,
            snapshot_idx: 30,
            port: 80,
            records: entries
                .iter()
                .map(|(ip, hs)| HttpRecord {
                    ip: *ip,
                    headers: hs
                        .iter()
                        .map(|(n, v)| (n.to_string(), v.to_string()))
                        .collect(),
                })
                .collect(),
        };
        BannerIndex::build(Some(&snap), None)
    }

    fn candidate(ips: &[u32]) -> CandidateSet {
        CandidateSet {
            ips: ips.iter().map(|&ip| (ip, Fingerprint([0u8; 32]))).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn matching_banner_confirms() {
        let (topo, map) = tiny_map();
        let ip = topo.ases()[100].prefixes[0].addr(1);
        let banners = banner_index(&[(ip, &[("Server", "gvs 1.0")])]);
        let set = confirm_candidates(
            "google",
            &candidate(&[ip]),
            &fps(),
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert_eq!(set.ips, vec![ip]);
        assert!(set.ases.contains(&topo.ases()[100].id));
    }

    #[test]
    fn non_matching_banner_rejected() {
        let (topo, map) = tiny_map();
        let ip = topo.ases()[100].prefixes[0].addr(1);
        let banners = banner_index(&[(ip, &[("Server", "nginx")])]);
        let set = confirm_candidates(
            "google",
            &candidate(&[ip]),
            &fps(),
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert!(set.ips.is_empty());
    }

    #[test]
    fn edge_priority_rejects_origin_attribution() {
        let (topo, map) = tiny_map();
        let ip = topo.ases()[100].prefixes[0].addr(1);
        // Banner carries BOTH apple-ish and akamai headers (cache miss
        // through an Akamai edge) — apple must not be confirmed, akamai is.
        let banners = banner_index(&[(ip, &[("Server", "AkamaiGHost"), ("CDNUUID", "abc-123")])]);
        let apple = confirm_candidates(
            "apple",
            &candidate(&[ip]),
            &fps(),
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert!(apple.ips.is_empty(), "apple must lose to the akamai edge");
        let akamai = confirm_candidates(
            "akamai",
            &candidate(&[ip]),
            &fps(),
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert_eq!(akamai.ips, vec![ip]);
    }

    #[test]
    fn missing_banner_means_unconfirmed() {
        let (topo, map) = tiny_map();
        let ip = topo.ases()[100].prefixes[0].addr(1);
        let banners = banner_index(&[]);
        let set = confirm_candidates(
            "google",
            &candidate(&[ip]),
            &fps(),
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert!(set.ips.is_empty());
    }

    #[test]
    fn and_mode_requires_agreement() {
        let (topo, map) = tiny_map();
        let ip = topo.ases()[100].prefixes[0].addr(1);
        let http = HttpScanSnapshot {
            engine: scanner::EngineId::Rapid7,
            snapshot_idx: 30,
            port: 80,
            records: vec![HttpRecord {
                ip,
                headers: vec![("Server".into(), "gvs 1.0".into())],
            }],
        };
        let https = HttpScanSnapshot {
            engine: scanner::EngineId::Rapid7,
            snapshot_idx: 30,
            port: 443,
            records: vec![HttpRecord {
                ip,
                headers: vec![("Server".into(), "nginx".into())],
            }],
        };
        let banners = BannerIndex::build(Some(&http), Some(&https));
        let or_mode = confirm_candidates(
            "google",
            &candidate(&[ip]),
            &fps(),
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert_eq!(or_mode.ips.len(), 1);
        let and_mode = confirm_candidates(
            "google",
            &candidate(&[ip]),
            &fps(),
            &banners,
            &map,
            ConfirmMode::HttpAndHttps,
        );
        assert!(and_mode.ips.is_empty());
    }

    #[test]
    fn empty_fingerprint_confirms_nothing() {
        let (topo, map) = tiny_map();
        let ip = topo.ases()[100].prefixes[0].addr(1);
        let banners = banner_index(&[(ip, &[("X-Hulu-Request-Id", "1")])]);
        let mut fps = HeaderFingerprints::default();
        fps.insert(HeaderFingerprint {
            keyword: "hulu".into(),
            pairs: vec![],
            names: vec![],
            support: 0,
        });
        let set = confirm_candidates(
            "hulu",
            &candidate(&[ip]),
            &fps,
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert!(set.ips.is_empty());
    }
}
