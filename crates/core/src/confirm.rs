//! §4.5 — confirming candidates with HTTP(S) header fingerprints.

use crate::candidates::CandidateSet;
use crate::headers::HeaderFingerprints;
use netsim::{AsId, IpToAsMap};
use scanner::HttpScanSnapshot;
use std::collections::{BTreeSet, HashMap};

/// Which banner corpuses must match for confirmation (Figure 4's series).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfirmMode {
    /// Certificates and (HTTP or HTTPS) headers — the paper's default.
    HttpOrHttps,
    /// Certificates and (HTTP and HTTPS) headers.
    HttpAndHttps,
}

/// Banner-stream quality counters: how many records the indexer saw and
/// how many it quarantined, by defect.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BannerQuality {
    /// Banner records across both ports before indexing.
    pub records_seen: usize,
    /// Records dropped for a header value past the size cap.
    pub oversized: usize,
    /// Records dropped for control bytes / U+FFFD in a header value.
    pub mojibake: usize,
    /// Repeat records for an IP already indexed on the same port.
    pub duplicate_ip: usize,
}

impl BannerQuality {
    pub fn quarantined_total(&self) -> usize {
        self.oversized + self.mojibake + self.duplicate_ip
    }
}

/// A header value is corrupt when it carries a control byte (other than
/// horizontal tab) or the U+FFFD replacement character — no simulated or
/// real banner legitimately does.
fn value_is_mojibake(v: &str) -> bool {
    v.chars()
        .any(|c| c == '\u{fffd}' || (c.is_control() && c != '\t'))
}

/// Indexed banners of one snapshot.
///
/// Corrupt records (oversized or mojibake header values) and duplicate
/// rows are quarantined at build time — counted in [`BannerQuality`] and
/// kept out of the index — so §4.5 only ever matches against well-formed
/// banners. For duplicates the first record wins, mirroring §4.1's
/// first-record-wins IP dedup.
#[derive(Debug, Default)]
pub struct BannerIndex {
    http80: HashMap<u32, Vec<(String, String)>>,
    https443: HashMap<u32, Vec<(String, String)>>,
    pub quality: BannerQuality,
}

impl BannerIndex {
    pub fn build(http80: Option<&HttpScanSnapshot>, https443: Option<&HttpScanSnapshot>) -> Self {
        let mut idx = Self::default();
        if let Some(s) = http80 {
            Self::index_stream(&mut idx.http80, s, &mut idx.quality);
        }
        if let Some(s) = https443 {
            Self::index_stream(&mut idx.https443, s, &mut idx.quality);
        }
        idx
    }

    fn index_stream(
        map: &mut HashMap<u32, Vec<(String, String)>>,
        snap: &HttpScanSnapshot,
        quality: &mut BannerQuality,
    ) {
        let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for r in &snap.records {
            quality.records_seen += 1;
            if !seen.insert(r.ip) {
                quality.duplicate_ip += 1;
                continue;
            }
            // Per record, the first defect found decides the quarantine
            // reason (matching the injector's per-record exclusivity).
            if r.headers
                .iter()
                .any(|(_, v)| v.len() > scanner::MAX_HEADER_VALUE_LEN)
            {
                quality.oversized += 1;
                continue;
            }
            if r.headers.iter().any(|(_, v)| value_is_mojibake(v)) {
                quality.mojibake += 1;
                continue;
            }
            map.insert(r.ip, r.headers.clone());
        }
    }

    pub fn http80(&self, ip: u32) -> Option<&Vec<(String, String)>> {
        self.http80.get(&ip)
    }

    pub fn https443(&self, ip: u32) -> Option<&Vec<(String, String)>> {
        self.https443.get(&ip)
    }

    /// Whether any HTTPS banners exist at all (they don't before the
    /// corpuses added HTTPS data).
    pub fn has_https(&self) -> bool {
        !self.https443.is_empty()
    }
}

/// Confirmed off-nets for one HG in one snapshot.
#[derive(Debug, Clone, Default)]
pub struct ConfirmedSet {
    pub ases: BTreeSet<AsId>,
    pub ips: Vec<u32>,
}

/// Edge CDNs whose headers take priority in multi-HG conflicts (§7
/// "Reverse Proxies and Cache Misses": Akamai and Cloudflare edges in
/// front of other origins).
const EDGE_PRIORITY: &[&str] = &["akamai", "cloudflare"];

/// Confirm a candidate set using header fingerprints.
///
/// A candidate IP is confirmed when its banner(s) match the HG's header
/// fingerprint under `mode`. When the banner *also* matches an edge CDN's
/// fingerprint (and the HG itself is not that CDN), the edge wins and the
/// candidate is rejected — the response came through a reverse proxy.
pub fn confirm_candidates(
    keyword: &str,
    candidates: &CandidateSet,
    fps: &HeaderFingerprints,
    banners: &BannerIndex,
    ip_to_as: &IpToAsMap,
    mode: ConfirmMode,
) -> ConfirmedSet {
    let keyword = keyword.to_ascii_lowercase();
    let mut out = ConfirmedSet::default();
    let Some(fp) = fps.get(&keyword) else {
        return out;
    };
    if fp.is_empty() {
        // No usable header fingerprint (§7 "Missing Headers") — nothing
        // can be confirmed for this HG.
        return out;
    }
    for (ip, _cert) in &candidates.ips {
        let http = banners.http80(*ip);
        let https = banners.https443(*ip);
        let match_one = |h: Option<&Vec<(String, String)>>| -> Option<bool> {
            h.map(|headers| {
                if !fp.matches(headers) {
                    return false;
                }
                // Reverse-proxy conflict: edge headers win.
                if !EDGE_PRIORITY.contains(&keyword.as_str()) {
                    let others = fps.matching_keywords(headers);
                    if others.iter().any(|k| EDGE_PRIORITY.contains(k)) {
                        return false;
                    }
                }
                true
            })
        };
        let m_http = match_one(http);
        let m_https = match_one(https);
        let confirmed = match mode {
            ConfirmMode::HttpOrHttps => m_http == Some(true) || m_https == Some(true),
            ConfirmMode::HttpAndHttps => {
                // Require agreement on every banner that exists; HTTPS-only
                // epochs degrade to HTTP-only data.
                match (m_http, m_https) {
                    (Some(a), Some(b)) => a && b,
                    (Some(a), None) | (None, Some(a)) => a,
                    (None, None) => false,
                }
            }
        };
        if confirmed {
            out.ips.push(*ip);
            for a in ip_to_as.lookup(*ip) {
                out.ases.insert(*a);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::HeaderFingerprint;
    use netsim::{BgpNoiseConfig, MonthlyRib, Topology, TopologyConfig};
    use scanner::HttpRecord;
    use x509::Fingerprint;

    fn tiny_map() -> (Topology, IpToAsMap) {
        let t = Topology::generate(&TopologyConfig::small(7));
        let rib = MonthlyRib::build(
            &t,
            30,
            &BgpNoiseConfig {
                hijack_rate: 0.0,
                moas_rate: 0.0,
                flap_rate: 0.0,
            },
            7,
        );
        let m = IpToAsMap::build(&rib);
        (t, m)
    }

    fn fps() -> HeaderFingerprints {
        let mut fps = HeaderFingerprints::default();
        fps.insert(HeaderFingerprint {
            keyword: "google".into(),
            pairs: vec![("server".into(), "gvs".into())],
            names: vec![],
            support: 10,
        });
        fps.insert(HeaderFingerprint {
            keyword: "akamai".into(),
            pairs: vec![("server".into(), "AkamaiGHost".into())],
            names: vec![],
            support: 10,
        });
        fps.insert(HeaderFingerprint {
            keyword: "apple".into(),
            pairs: vec![],
            names: vec!["cdnuuid".into()],
            support: 10,
        });
        fps
    }

    fn banner_index(entries: &[(u32, &[(&str, &str)])]) -> BannerIndex {
        let snap = HttpScanSnapshot {
            engine: scanner::EngineId::Rapid7,
            snapshot_idx: 30,
            port: 80,
            records: entries
                .iter()
                .map(|(ip, hs)| HttpRecord {
                    ip: *ip,
                    headers: hs
                        .iter()
                        .map(|(n, v)| (n.to_string(), v.to_string()))
                        .collect(),
                })
                .collect(),
        };
        BannerIndex::build(Some(&snap), None)
    }

    fn candidate(ips: &[u32]) -> CandidateSet {
        CandidateSet {
            ips: ips.iter().map(|&ip| (ip, Fingerprint([0u8; 32]))).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn matching_banner_confirms() {
        let (topo, map) = tiny_map();
        let ip = topo.ases()[100].prefixes[0].addr(1);
        let banners = banner_index(&[(ip, &[("Server", "gvs 1.0")])]);
        let set = confirm_candidates(
            "google",
            &candidate(&[ip]),
            &fps(),
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert_eq!(set.ips, vec![ip]);
        assert!(set.ases.contains(&topo.ases()[100].id));
    }

    #[test]
    fn non_matching_banner_rejected() {
        let (topo, map) = tiny_map();
        let ip = topo.ases()[100].prefixes[0].addr(1);
        let banners = banner_index(&[(ip, &[("Server", "nginx")])]);
        let set = confirm_candidates(
            "google",
            &candidate(&[ip]),
            &fps(),
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert!(set.ips.is_empty());
    }

    #[test]
    fn edge_priority_rejects_origin_attribution() {
        let (topo, map) = tiny_map();
        let ip = topo.ases()[100].prefixes[0].addr(1);
        // Banner carries BOTH apple-ish and akamai headers (cache miss
        // through an Akamai edge) — apple must not be confirmed, akamai is.
        let banners = banner_index(&[(ip, &[("Server", "AkamaiGHost"), ("CDNUUID", "abc-123")])]);
        let apple = confirm_candidates(
            "apple",
            &candidate(&[ip]),
            &fps(),
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert!(apple.ips.is_empty(), "apple must lose to the akamai edge");
        let akamai = confirm_candidates(
            "akamai",
            &candidate(&[ip]),
            &fps(),
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert_eq!(akamai.ips, vec![ip]);
    }

    #[test]
    fn missing_banner_means_unconfirmed() {
        let (topo, map) = tiny_map();
        let ip = topo.ases()[100].prefixes[0].addr(1);
        let banners = banner_index(&[]);
        let set = confirm_candidates(
            "google",
            &candidate(&[ip]),
            &fps(),
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert!(set.ips.is_empty());
    }

    #[test]
    fn and_mode_requires_agreement() {
        let (topo, map) = tiny_map();
        let ip = topo.ases()[100].prefixes[0].addr(1);
        let http = HttpScanSnapshot {
            engine: scanner::EngineId::Rapid7,
            snapshot_idx: 30,
            port: 80,
            records: vec![HttpRecord {
                ip,
                headers: vec![("Server".into(), "gvs 1.0".into())],
            }],
        };
        let https = HttpScanSnapshot {
            engine: scanner::EngineId::Rapid7,
            snapshot_idx: 30,
            port: 443,
            records: vec![HttpRecord {
                ip,
                headers: vec![("Server".into(), "nginx".into())],
            }],
        };
        let banners = BannerIndex::build(Some(&http), Some(&https));
        let or_mode = confirm_candidates(
            "google",
            &candidate(&[ip]),
            &fps(),
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert_eq!(or_mode.ips.len(), 1);
        let and_mode = confirm_candidates(
            "google",
            &candidate(&[ip]),
            &fps(),
            &banners,
            &map,
            ConfirmMode::HttpAndHttps,
        );
        assert!(and_mode.ips.is_empty());
    }

    #[test]
    fn corrupt_and_duplicate_banners_are_quarantined() {
        let snap = HttpScanSnapshot {
            engine: scanner::EngineId::Rapid7,
            snapshot_idx: 30,
            port: 80,
            records: vec![
                HttpRecord {
                    ip: 1,
                    headers: vec![("Server".into(), "gvs 1.0".into())],
                },
                // Duplicate row for IP 1: first record wins.
                HttpRecord {
                    ip: 1,
                    headers: vec![("Server".into(), "nginx".into())],
                },
                // Mojibake value.
                HttpRecord {
                    ip: 2,
                    headers: vec![("Server".into(), "gvs\u{fffd}\u{0007}".into())],
                },
                // Oversized value.
                HttpRecord {
                    ip: 3,
                    headers: vec![(
                        "Server".into(),
                        "A".repeat(scanner::MAX_HEADER_VALUE_LEN + 1),
                    )],
                },
                HttpRecord {
                    ip: 4,
                    headers: vec![("Server".into(), "clean\tvalue".into())],
                },
            ],
        };
        let idx = BannerIndex::build(Some(&snap), None);
        assert_eq!(idx.quality.records_seen, 5);
        assert_eq!(idx.quality.duplicate_ip, 1);
        assert_eq!(idx.quality.mojibake, 1);
        assert_eq!(idx.quality.oversized, 1);
        assert_eq!(idx.quality.quarantined_total(), 3);
        assert_eq!(idx.http80(1).unwrap()[0].1, "gvs 1.0", "first record wins");
        assert!(idx.http80(2).is_none(), "mojibake banner must not index");
        assert!(idx.http80(3).is_none(), "oversized banner must not index");
        assert!(idx.http80(4).is_some(), "tab is a legal header byte");
    }

    #[test]
    fn empty_fingerprint_confirms_nothing() {
        let (topo, map) = tiny_map();
        let ip = topo.ases()[100].prefixes[0].addr(1);
        let banners = banner_index(&[(ip, &[("X-Hulu-Request-Id", "1")])]);
        let mut fps = HeaderFingerprints::default();
        fps.insert(HeaderFingerprint {
            keyword: "hulu".into(),
            pairs: vec![],
            names: vec![],
            support: 0,
        });
        let set = confirm_candidates(
            "hulu",
            &candidate(&[ip]),
            &fps,
            &banners,
            &map,
            ConfirmMode::HttpOrHttps,
        );
        assert!(set.ips.is_empty());
    }
}
