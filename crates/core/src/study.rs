//! Longitudinal study driver: the full 2013-10 … 2021-04 analysis over one
//! scan engine, including the §6.2 Netflix restorations.

use crate::artifact::{artifact_fingerprint, ArtifactBuilder, ArtifactError};
use crate::checkpoint::{CheckpointError, CheckpointStore, SnapshotCheckpoint};
use crate::confirm::ConfirmMode;
use crate::corpus::SnapshotCorpus;
use crate::delta::{process_corpus_delta, DeltaReport, DeltaState};
use crate::errors::DataQualityReport;
use crate::headers::{
    learn_header_fingerprints, learn_header_fingerprints_from_tallies, GlobalHeaderStats,
    HeaderFingerprints,
};
use crate::parallel::parallel_map_isolated;
use crate::pipeline::{process_corpus, standard_validate_options, PipelineContext, SnapshotResult};
use crate::shard::{process_snapshot_sharded, process_snapshot_sharded_delta, ShardingConfig};
use crate::validation_cache::ValidationCache;
use hgsim::{Endpoint, Hg, HgWorld, ALL_HGS};
use intern::Interner;
use netsim::AsId;
use scanner::{covers_snapshot, observe_snapshot, HttpScanStream, ScanEngine};
use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;

/// Study parameters.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Snapshot at which header fingerprints are learned (the paper uses
    /// September 2020 on-net scans; index 28 = 2020-10).
    pub header_reference_snapshot: usize,
    pub confirm_mode: ConfirmMode,
    pub candidate_options: crate::candidates::CandidateOptions,
    /// Inclusive snapshot range to process.
    pub snapshots: (usize, usize),
    /// When set, snapshots are processed through the streaming sharded
    /// pipeline ([`crate::shard`]): bounded peak memory, spilled segments,
    /// byte-identical rendered output. Shard freezing fans out over the
    /// config's `workers` (default: the context's thread count) with a
    /// bounded `depth` of in-flight shards, so peak memory stays at
    /// `depth × shard` and the output is byte-identical at any worker
    /// count.
    pub sharding: Option<ShardingConfig>,
    /// When set, the study's results are also sealed into a
    /// [`crate::artifact::StudyArtifact`] at this path (batch drivers
    /// write it once at the end; the incremental engine re-persists after
    /// every append).
    pub artifact_out: Option<std::path::PathBuf>,
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self {
            header_reference_snapshot: 28,
            confirm_mode: ConfirmMode::HttpOrHttps,
            candidate_options: Default::default(),
            snapshots: (0, 30),
            sharding: None,
            artifact_out: None,
        }
    }
}

/// The §6.2 Netflix footprint variants, per snapshot.
#[derive(Debug, Clone, Default)]
pub struct NetflixVariants {
    /// Standard pipeline output.
    pub initial: Vec<usize>,
    /// Expired default certificates restored.
    pub with_expired: Vec<usize>,
    /// Additionally restoring IPs that previously served Netflix
    /// certificates and now answer only on HTTP.
    pub with_non_tls: Vec<usize>,
}

/// One [`ArtifactBuilder`] per study run: every driver accumulates
/// through it (snapshot results, the §6.2 fold, reuse reports), so the
/// emitted artifact cannot drift from the in-memory series.
fn new_builder(
    world: &HgWorld,
    engine: &ScanEngine,
    config: &StudyConfig,
    header_fps: HeaderFingerprints,
) -> ArtifactBuilder {
    let mut builder = ArtifactBuilder::new(
        engine.id,
        header_fps,
        artifact_fingerprint(world, engine, config),
    );
    if let Some(path) = &config.artifact_out {
        builder.attach_path(path);
    }
    builder
}

/// Seal a batch driver's builder: persist the artifact (when
/// `artifact_out` asked for one) and unwrap the series.
fn seal(builder: ArtifactBuilder) -> StudySeries {
    builder.persist().expect("study artifact write failed");
    builder.finish().0
}

/// The full longitudinal result for one engine.
#[derive(Debug)]
pub struct StudySeries {
    pub engine: scanner::EngineId,
    /// One entry per processed snapshot, in order.
    pub snapshots: Vec<SnapshotResult>,
    pub netflix: NetflixVariants,
    /// The header fingerprints the study ran with.
    pub header_fps: HeaderFingerprints,
}

impl StudySeries {
    /// Confirmed AS counts per snapshot for one HG, without allocating.
    pub fn confirmed_counts(&self, hg: Hg) -> impl Iterator<Item = usize> + '_ {
        self.snapshots
            .iter()
            .map(move |s| s.per_hg[&hg].confirmed_ases.len())
    }

    /// Certificate-only (candidate) AS counts per snapshot for one HG,
    /// without allocating.
    pub fn candidate_counts(&self, hg: Hg) -> impl Iterator<Item = usize> + '_ {
        self.snapshots
            .iter()
            .map(move |s| s.per_hg[&hg].candidate_ases.len())
    }

    /// [`Self::confirmed_counts`] collected into a `Vec`.
    pub fn confirmed_series(&self, hg: Hg) -> Vec<usize> {
        self.confirmed_counts(hg).collect()
    }

    /// [`Self::candidate_counts`] collected into a `Vec`.
    pub fn candidate_series(&self, hg: Hg) -> Vec<usize> {
        self.candidate_counts(hg).collect()
    }

    /// Confirmed AS set at a snapshot offset.
    pub fn confirmed_at(&self, hg: Hg, idx: usize) -> &BTreeSet<AsId> {
        &self.snapshots[idx].per_hg[&hg].confirmed_ases
    }

    /// The study-wide data-quality report: every snapshot's report merged
    /// (counts summed, degradation notes collected).
    pub fn aggregate_quality(&self) -> DataQualityReport {
        let mut merged = DataQualityReport::default();
        for snap in &self.snapshots {
            merged.merge(&snap.quality);
        }
        merged
    }
}

/// Learn the per-HG header fingerprints from a reference snapshot's on-net
/// banners (§4.4), using HTTPS banners where available and HTTP otherwise.
///
/// When the requested snapshot is missing from the corpus (engine coverage
/// window, or a dropped-snapshot fault), the nearest available snapshot is
/// used instead; with no observable snapshot at all, the fingerprints come
/// back empty and §4.5 simply confirms nothing.
pub fn learn_reference_fingerprints(
    world: &HgWorld,
    engine: &ScanEngine,
    reference_snapshot: usize,
) -> HeaderFingerprints {
    let n = world.n_snapshots();
    let t0 = reference_snapshot.min(n - 1);
    // Spiral outward from the requested index: t0, t0-1, t0+1, t0-2, …
    // (earlier-first keeps the learned set closest to the paper's
    // September-2020 reference when the exact month is missing).
    let mut candidates = vec![t0];
    for d in 1..n {
        if let Some(t) = t0.checked_sub(d) {
            candidates.push(t);
        }
        if t0 + d < n {
            candidates.push(t0 + d);
        }
    }
    let mut obs = None;
    for t in candidates {
        if let Some(o) = observe_snapshot(world, engine, t) {
            obs = Some(o);
            break;
        }
    }
    let Some(obs) = obs else {
        return HeaderFingerprints::default();
    };
    let banner_snap = obs.https443.as_ref().or(obs.http80.as_ref());
    let mut fps = HeaderFingerprints::default();
    let Some(banner_snap) = banner_snap else {
        return fps;
    };
    let global = GlobalHeaderStats::build(&banner_snap.records);
    for hg in ALL_HGS {
        let hg_ases: HashSet<AsId> = world
            .org_db()
            .ases_matching(hg.spec().keyword)
            .into_iter()
            .collect();
        let onnet: Vec<&scanner::HttpRecord> = banner_snap
            .records
            .iter()
            .filter(|r| {
                obs.ip_to_as
                    .lookup(r.ip)
                    .iter()
                    .any(|a| hg_ases.contains(a))
            })
            .collect();
        fps.insert(learn_header_fingerprints(
            hg.spec().keyword,
            &onnet,
            &global,
            &obs.interner,
        ));
    }
    fps
}

/// Streaming variant of [`learn_reference_fingerprints`]: the reference
/// snapshot's banners are scanned in `shard_size` chunks and folded into
/// per-HG and global tallies, never held as a record slice. Because the
/// learned fingerprints are string-typed and selection is independent of
/// interning order (pinned by the permutation property test), the result
/// equals the monolithic learner's.
pub fn learn_reference_fingerprints_sharded(
    world: &HgWorld,
    engine: &ScanEngine,
    reference_snapshot: usize,
    shard_size: usize,
) -> HeaderFingerprints {
    let n = world.n_snapshots();
    let t0 = reference_snapshot.min(n - 1);
    // Same spiral as the monolithic learner: t0, t0-1, t0+1, t0-2, …
    let mut candidates = vec![t0];
    for d in 1..n {
        if let Some(t) = t0.checked_sub(d) {
            candidates.push(t);
        }
        if t0 + d < n {
            candidates.push(t0 + d);
        }
    }
    let Some(t) = candidates.into_iter().find(|&t| covers_snapshot(engine, t)) else {
        return HeaderFingerprints::default();
    };
    let mut fps = HeaderFingerprints::default();
    // Banner source matches the monolithic picker: HTTPS banners where
    // available, HTTP otherwise; neither → empty fingerprints.
    let Some(mut stream) =
        HttpScanStream::new(engine, t, 443, n).or_else(|| HttpScanStream::new(engine, t, 80, n))
    else {
        return fps;
    };

    let ip_to_as = world.ip_to_as(t);
    let hg_ases: Vec<(Hg, HashSet<AsId>)> = ALL_HGS
        .iter()
        .map(|&hg| {
            (
                hg,
                world
                    .org_db()
                    .ases_matching(hg.spec().keyword)
                    .into_iter()
                    .collect(),
            )
        })
        .collect();

    // One persistent interner across chunks keeps symbols consistent for
    // the cross-chunk tallies.
    let mut interner = Interner::default();
    let mut global = GlobalHeaderStats::default();
    let mut onnet: Vec<GlobalHeaderStats> = vec![GlobalHeaderStats::default(); hg_ases.len()];
    let shard_size = shard_size.max(1);
    let mut chunk: Vec<Endpoint> = Vec::with_capacity(shard_size);
    {
        let mut absorb_chunk = |chunk: &mut Vec<Endpoint>, interner: &mut Interner| {
            for r in stream.scan_chunk(chunk, interner) {
                global.absorb(&r);
                for ((_, ases), tally) in hg_ases.iter().zip(onnet.iter_mut()) {
                    if ip_to_as.lookup(r.ip).iter().any(|a| ases.contains(a)) {
                        tally.absorb(&r);
                    }
                }
            }
            chunk.clear();
        };
        world.for_each_endpoint(t, |ep| {
            chunk.push(ep);
            if chunk.len() == shard_size {
                absorb_chunk(&mut chunk, &mut interner);
            }
        });
        if !chunk.is_empty() {
            absorb_chunk(&mut chunk, &mut interner);
        }
    }
    stream.finish();

    for ((hg, _), tally) in hg_ases.iter().zip(&onnet) {
        fps.insert(learn_header_fingerprints_from_tallies(
            hg.spec().keyword,
            tally,
            &global,
            &interner,
        ));
    }
    fps
}

/// Pick the reference-fingerprint learner the config asks for.
fn reference_fingerprints(
    world: &HgWorld,
    engine: &ScanEngine,
    config: &StudyConfig,
) -> HeaderFingerprints {
    match &config.sharding {
        Some(s) => learn_reference_fingerprints_sharded(
            world,
            engine,
            config.header_reference_snapshot,
            s.shard_size,
        ),
        None => learn_reference_fingerprints(world, engine, config.header_reference_snapshot),
    }
}

/// Run the longitudinal study for `engine` over `world`.
pub fn run_study(world: &HgWorld, engine: &ScanEngine, config: &StudyConfig) -> StudySeries {
    let header_fps = reference_fingerprints(world, engine, config);
    let mut ctx = PipelineContext::new(
        world.pki().root_store().clone(),
        world.org_db(),
        header_fps.clone(),
    );
    ctx.candidate_options = config.candidate_options.clone();
    ctx.confirm_mode = config.confirm_mode;

    let mut builder = new_builder(world, engine, config, header_fps);

    for t in config.snapshots.0..=config.snapshots.1.min(world.n_snapshots() - 1) {
        if let Some(sharding) = &config.sharding {
            let outcome = process_snapshot_sharded(world, engine, t, &ctx, sharding)
                .expect("sharded snapshot processing failed");
            let Some(result) = outcome else {
                continue;
            };
            let ip_to_as = world.ip_to_as(t);
            builder.push_snapshot(result, |ip| ip_to_as.lookup(ip).to_vec());
            continue;
        }
        let Some(obs) = observe_snapshot(world, engine, t) else {
            continue;
        };
        // Observation → corpus → stages, threaded explicitly: the corpus
        // owns the frozen interner the downstream stages resolve through.
        let corpus = SnapshotCorpus::build(&obs, &ctx.roots, &standard_validate_options(), None);
        let result = process_corpus(&corpus, &ctx);
        builder.push_snapshot(result, |ip| corpus.ip_to_as.lookup(ip).to_vec());
    }

    seal(builder)
}

/// Crash-resumable variant of [`run_study`]: after each snapshot
/// completes, its result and the §6.2 fold state are persisted into
/// `store`; a relaunched run adopts the contiguous completed prefix and
/// recomputes only from the first missing snapshot. The returned series
/// is byte-identical (under [`crate::delta`]-style rendering) to an
/// uninterrupted [`run_study`] over the same range.
pub fn run_study_checkpointed(
    world: &HgWorld,
    engine: &ScanEngine,
    config: &StudyConfig,
    store: &CheckpointStore,
) -> Result<StudySeries, CheckpointError> {
    let header_fps = reference_fingerprints(world, engine, config);
    let mut ctx = PipelineContext::new(
        world.pki().root_store().clone(),
        world.org_db(),
        header_fps.clone(),
    );
    ctx.candidate_options = config.candidate_options.clone();
    ctx.confirm_mode = config.confirm_mode;

    let start = config.snapshots.0;
    let end = config.snapshots.1.min(world.n_snapshots() - 1);

    let mut builder = new_builder(world, engine, config, header_fps);
    let mut next = start;
    for ckpt in adopt_contiguous_prefix(store, start, end)? {
        builder.adopt_checkpoint(&ckpt);
        next = ckpt.snapshot_idx + 1;
    }

    for t in next..=end {
        let result = if let Some(sharding) = &config.sharding {
            match process_snapshot_sharded(world, engine, t, &ctx, sharding)? {
                Some(result) => result,
                None => {
                    // Record skips too, so the completed prefix stays
                    // contiguous in snapshot indices and the resume point
                    // is unambiguous.
                    store.save(&SnapshotCheckpoint::skipped(t, builder.netflix_history()))?;
                    continue;
                }
            }
        } else {
            let Some(obs) = observe_snapshot(world, engine, t) else {
                store.save(&SnapshotCheckpoint::skipped(t, builder.netflix_history()))?;
                continue;
            };
            let corpus =
                SnapshotCorpus::build(&obs, &ctx.roots, &standard_validate_options(), None);
            process_corpus(&corpus, &ctx)
        };
        let ip_to_as = world.ip_to_as(t);
        let (initial, with_expired, with_non_tls) =
            builder.push_snapshot(result.clone(), |ip| ip_to_as.lookup(ip).to_vec());
        store.save(&SnapshotCheckpoint {
            snapshot_idx: t,
            processed: true,
            result,
            netflix_initial: initial,
            netflix_with_expired: with_expired,
            netflix_with_non_tls: with_non_tls,
            netflix_ip_history: builder.netflix_history(),
            evidence: None,
            report: None,
        })?;
    }

    Ok(seal(builder))
}

/// Load `store` and keep the contiguous run of checkpoints starting
/// exactly at `start` (bounded by `end`). Artifacts below `start` are
/// ignored; the first gap ends adoption — everything past it is
/// recomputed (and overwritten) rather than trusted out of order.
fn adopt_contiguous_prefix(
    store: &CheckpointStore,
    start: usize,
    end: usize,
) -> Result<Vec<SnapshotCheckpoint>, CheckpointError> {
    let mut adopted: Vec<SnapshotCheckpoint> = Vec::new();
    for ckpt in store.load_all()? {
        if ckpt.snapshot_idx < start {
            continue;
        }
        if ckpt.snapshot_idx == start + adopted.len() && ckpt.snapshot_idx <= end {
            adopted.push(ckpt);
        } else {
            break;
        }
    }
    Ok(adopted)
}

/// Parallel variant of [`run_study`]: snapshots are observed and processed
/// across `threads` workers sharing one cross-snapshot
/// [`ValidationCache`], then the order-dependent Netflix non-TLS
/// restoration is folded sequentially. Produces the same `StudySeries` as
/// the sequential driver for any thread count.
pub fn run_study_parallel(
    world: &HgWorld,
    engine: &ScanEngine,
    config: &StudyConfig,
    threads: usize,
) -> StudySeries {
    let header_fps = reference_fingerprints(world, engine, config);
    let mut ctx = PipelineContext::new(
        world.pki().root_store().clone(),
        world.org_db(),
        header_fps.clone(),
    )
    .with_threads(threads)
    .with_validation_cache(Arc::new(ValidationCache::new()));
    ctx.candidate_options = config.candidate_options.clone();
    ctx.confirm_mode = config.confirm_mode;

    // Observe + process each snapshot independently; alongside the result,
    // record the AS origins of its HTTP-only IPs so the observation bundle
    // can be dropped before the sequential fold below.
    let ts: Vec<usize> =
        (config.snapshots.0..=config.snapshots.1.min(world.n_snapshots() - 1)).collect();
    let inner = ctx.clone().with_threads(1);
    type SnapOut = (SnapshotResult, Vec<(u32, Vec<AsId>)>);
    // Per-snapshot panic isolation: a worker that dies past its retry
    // degrades that snapshot to an empty placeholder (flagged in its
    // quality report) instead of aborting the study.
    let outputs: Vec<Option<SnapOut>> = parallel_map_isolated(&ts, ctx.threads, 1, |&t| {
        let result = if let Some(sharding) = &config.sharding {
            // Sharded workers write disjoint per-snapshot spill
            // subdirectories, so they never contend on segments. An I/O
            // failure panics here and degrades this snapshot only.
            process_snapshot_sharded(world, engine, t, &inner, sharding)
                .expect("sharded snapshot processing failed")?
        } else {
            let obs = observe_snapshot(world, engine, t)?;
            // Build the corpus explicitly so validation shares the
            // study-wide cache; its frozen interner is what makes the
            // share-nothing worker safe to run without locks.
            let corpus = SnapshotCorpus::build(
                &obs,
                &inner.roots,
                &standard_validate_options(),
                inner.validation_cache.as_deref(),
            );
            process_corpus(&corpus, &inner)
        };
        let ip_to_as = world.ip_to_as(t);
        let http_only_origins = result
            .http_only_ips
            .iter()
            .map(|&ip| (ip, ip_to_as.lookup(ip).to_vec()))
            .collect();
        Some((result, http_only_origins))
    })
    .into_iter()
    .zip(&ts)
    .map(|(outcome, &t)| match outcome {
        Ok(out) => out,
        Err(e) => Some((SnapshotResult::degraded(t, e.message), Vec::new())),
    })
    .collect();

    // The §6.2 non-TLS restoration consults the cumulative IP history, so
    // it must run in snapshot order — but it is cheap set arithmetic.
    let mut builder = new_builder(world, engine, config, header_fps);
    for (result, http_only_origins) in outputs.into_iter().flatten() {
        let origin_map: std::collections::HashMap<u32, Vec<AsId>> =
            http_only_origins.into_iter().collect();
        builder.push_snapshot(result, |ip| {
            origin_map.get(&ip).cloned().unwrap_or_default()
        });
    }

    seal(builder)
}

/// The incremental study's output: the same [`StudySeries`] `run_study`
/// produces, plus per-snapshot delta-engine reuse accounting. The reuse
/// counters live *beside* the series, never inside it, so every rendered
/// study artifact stays byte-identical to the full recompute.
#[derive(Debug)]
pub struct IncrementalStudy {
    pub series: StudySeries,
    /// One report per processed snapshot, aligned with `series.snapshots`.
    pub reports: Vec<DeltaReport>,
}

/// Append-only incremental study driver: feed it snapshots in order and
/// it diffs each corpus against its predecessor, replaying clean HGs'
/// results and recomputing only dirty ones (see [`crate::delta`]). The
/// first appended snapshot — and any snapshot following a degraded one —
/// is a full compute.
///
/// Chain validation always runs through a shared [`ValidationCache`], so
/// §4.1 work on persisted chains is a skeleton replay; the per-snapshot
/// replay/reverify split lands in each [`DeltaReport`].
#[derive(Clone)]
pub struct DeltaStudyEngine<'w> {
    world: &'w HgWorld,
    engine: ScanEngine,
    ctx: PipelineContext,
    cache: Arc<ValidationCache>,
    state: Option<DeltaState>,
    /// Accumulated results, fold state, and reuse reports — and, when an
    /// artifact path is attached, the on-disk artifact each append
    /// re-persists.
    builder: ArtifactBuilder,
    /// Cache (hits, misses) totals at the end of the previous append, so
    /// each report carries per-snapshot deltas.
    cache_mark: (u64, u64),
    /// Checkpoint persistence, when attached via [`Self::with_checkpoints`].
    store: Option<CheckpointStore>,
    /// Snapshot indices adopted from checkpoints at construction, with the
    /// `processed` flag each artifact recorded. Appends for these indices
    /// return the recorded outcome instead of recomputing.
    adopted: std::collections::BTreeMap<usize, bool>,
    /// The study range from construction — adoption only trusts a
    /// contiguous prefix starting exactly at `first_snapshot`.
    first_snapshot: usize,
    last_snapshot: usize,
    /// Streaming sharded processing, when the config asks for it.
    sharding: Option<ShardingConfig>,
}

impl<'w> DeltaStudyEngine<'w> {
    pub fn new(world: &'w HgWorld, engine: ScanEngine, config: &StudyConfig) -> Self {
        let header_fps = reference_fingerprints(world, &engine, config);
        let cache = Arc::new(ValidationCache::new());
        let mut ctx = PipelineContext::new(
            world.pki().root_store().clone(),
            world.org_db(),
            header_fps.clone(),
        )
        .with_validation_cache(cache.clone());
        ctx.candidate_options = config.candidate_options.clone();
        ctx.confirm_mode = config.confirm_mode;
        let builder = new_builder(world, &engine, config, header_fps);
        Self {
            world,
            engine,
            ctx,
            cache,
            state: None,
            builder,
            cache_mark: (0, 0),
            store: None,
            adopted: std::collections::BTreeMap::new(),
            first_snapshot: config.snapshots.0,
            last_snapshot: config.snapshots.1.min(world.n_snapshots() - 1),
            sharding: config.sharding.clone(),
        }
    }

    /// Attach a checkpoint store and adopt whatever contiguous completed
    /// prefix it holds: adopted snapshots' results, reuse reports, fold
    /// state, and the last processed snapshot's delta evidence are
    /// restored, so the first live append diffs against it exactly as an
    /// uninterrupted run would. An adopted artifact without evidence (or
    /// a prefix ending in skips) simply degrades the next append to a
    /// full compute — correct, just slower.
    pub fn with_checkpoints(mut self, store: CheckpointStore) -> Result<Self, CheckpointError> {
        for ckpt in adopt_contiguous_prefix(&store, self.first_snapshot, self.last_snapshot)? {
            self.adopted.insert(ckpt.snapshot_idx, ckpt.processed);
            self.builder.adopt_checkpoint(&ckpt);
            if ckpt.processed {
                self.builder.push_report(ckpt.report.unwrap_or(DeltaReport {
                    snapshot_idx: ckpt.snapshot_idx,
                    full_compute: true,
                    ..Default::default()
                }));
                self.state = ckpt.evidence.map(|evidence| DeltaState {
                    evidence,
                    result: ckpt.result,
                });
            }
        }
        self.store = Some(store);
        Ok(self)
    }

    /// Attach `path` as the on-disk [`crate::artifact::StudyArtifact`]
    /// this engine appends to. When a valid artifact (written under the
    /// same config fingerprint) already exists there, its snapshots are
    /// adopted: appends for those indices return the recorded outcome
    /// without recomputing, and later appends extend the artifact in
    /// place — each one re-persisted atomically. A missing file starts a
    /// fresh artifact; a mismatched or corrupt one is a typed
    /// [`ArtifactError`]. The artifact stores results, not delta
    /// evidence, so the first live append after adoption is a full
    /// compute — correct, just slower, exactly like resuming from a
    /// checkpoint prefix whose tail has no evidence.
    pub fn with_artifact(
        mut self,
        path: impl Into<std::path::PathBuf>,
    ) -> Result<Self, ArtifactError> {
        let adopted = self.builder.adopt_from_path(path)?;
        let mut missing_reports = Vec::new();
        for (i, s) in self.builder.snapshots().iter().enumerate().take(adopted) {
            self.adopted.insert(s.snapshot_idx, true);
            // An artifact written by a batch driver carries no reuse
            // reports; synthesize full-compute markers so reports stay
            // aligned with snapshots.
            if i >= self.builder.reports().len() {
                missing_reports.push(s.snapshot_idx);
            }
        }
        for snapshot_idx in missing_reports {
            self.builder.push_report(DeltaReport {
                snapshot_idx,
                full_compute: true,
                ..Default::default()
            });
        }
        Ok(self)
    }

    /// Observe and process snapshot `t`, diffing against the previously
    /// appended snapshot. Returns `false` (appending nothing) when the
    /// engine's corpus does not cover `t` — the same snapshots
    /// `run_study` skips.
    ///
    /// With no checkpoint store attached this cannot fail; prefer
    /// [`Self::try_append_snapshot`] when one is.
    pub fn append_snapshot(&mut self, t: usize) -> bool {
        self.try_append_snapshot(t)
            .expect("checkpoint persistence failed")
    }

    /// [`Self::append_snapshot`] with checkpoint persistence surfaced:
    /// the snapshot's artifact is written (atomically) after processing,
    /// and appends for snapshots adopted at construction return their
    /// recorded outcome without recomputing.
    pub fn try_append_snapshot(&mut self, t: usize) -> Result<bool, CheckpointError> {
        if let Some(&processed) = self.adopted.get(&t) {
            return Ok(processed);
        }
        let outcome = if let Some(sharding) = &self.sharding {
            process_snapshot_sharded_delta(
                self.world,
                &self.engine,
                t,
                &self.ctx,
                sharding,
                self.state.as_ref(),
            )?
        } else if let Some(obs) = observe_snapshot(self.world, &self.engine, t) {
            let chain_rows = obs.cert.chain_digests();
            let corpus = SnapshotCorpus::build(
                &obs,
                &self.ctx.roots,
                &standard_validate_options(),
                self.ctx.validation_cache.as_deref(),
            );
            Some(process_corpus_delta(
                &corpus,
                &self.ctx,
                chain_rows,
                self.state.as_ref(),
            ))
        } else {
            None
        };
        let Some((result, evidence, mut report)) = outcome else {
            if let Some(store) = &self.store {
                store.save(&SnapshotCheckpoint::skipped(
                    t,
                    self.builder.netflix_history(),
                ))?;
            }
            return Ok(false);
        };
        let (hits, misses) = self.cache.hit_stats();
        report.chains_replayed = hits - self.cache_mark.0;
        report.chains_revalidated = misses - self.cache_mark.1;
        self.cache_mark = (hits, misses);

        // The §6.2 Netflix fold, identical to `run_study`'s.
        let ip_to_as = self.world.ip_to_as(t);
        let (initial, with_expired, with_non_tls) = self
            .builder
            .push_snapshot(result.clone(), |ip| ip_to_as.lookup(ip).to_vec());

        if let Some(store) = &self.store {
            store.save(&SnapshotCheckpoint {
                snapshot_idx: t,
                processed: true,
                result: result.clone(),
                netflix_initial: initial,
                netflix_with_expired: with_expired,
                netflix_with_non_tls: with_non_tls,
                netflix_ip_history: self.builder.netflix_history(),
                evidence: Some(evidence.clone()),
                report: Some(report),
            })?;
        }

        self.state = Some(DeltaState { evidence, result });
        self.builder.push_report(report);
        // Re-persist after every append, so the on-disk artifact always
        // reflects the grown prefix.
        self.builder.persist().expect("study artifact write failed");
        Ok(true)
    }

    /// Per-snapshot reuse reports so far.
    pub fn reports(&self) -> &[DeltaReport] {
        self.builder.reports()
    }

    /// The shared §4.1 validation cache (for its lifetime counters).
    pub fn cache(&self) -> &ValidationCache {
        &self.cache
    }

    pub fn finish(self) -> IncrementalStudy {
        self.builder.persist().expect("study artifact write failed");
        let (series, reports) = self.builder.finish();
        IncrementalStudy { series, reports }
    }
}

/// Incremental variant of [`run_study`]: the first snapshot is computed
/// in full, every later one as a delta against its predecessor. The
/// rendered series is byte-identical to the full recompute
/// (`tests/incremental.rs` pins this, faults included).
pub fn run_study_incremental(
    world: &HgWorld,
    engine: &ScanEngine,
    config: &StudyConfig,
) -> IncrementalStudy {
    let mut driver = DeltaStudyEngine::new(world, engine.clone(), config);
    for t in config.snapshots.0..=config.snapshots.1.min(world.n_snapshots() - 1) {
        driver.append_snapshot(t);
    }
    driver.finish()
}

/// Crash-resumable variant of [`run_study_incremental`]: every appended
/// snapshot persists its result *and* the delta engine's evidence into
/// `store`, so a relaunched run adopts the completed prefix and resumes
/// diffing from the first missing snapshot — still incremental, not a
/// full recompute. The rendered series is byte-identical to an
/// uninterrupted run; only the reuse reports' validation-cache counters
/// differ (the cache restarts cold).
pub fn run_study_incremental_checkpointed(
    world: &HgWorld,
    engine: &ScanEngine,
    config: &StudyConfig,
    store: CheckpointStore,
) -> Result<IncrementalStudy, CheckpointError> {
    let mut driver =
        DeltaStudyEngine::new(world, engine.clone(), config).with_checkpoints(store)?;
    for t in config.snapshots.0..=config.snapshots.1.min(world.n_snapshots() - 1) {
        driver.try_append_snapshot(t)?;
    }
    Ok(driver.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgsim::ScenarioConfig;
    use std::sync::OnceLock;

    fn study() -> &'static StudySeries {
        static S: OnceLock<StudySeries> = OnceLock::new();
        S.get_or_init(|| {
            let world = HgWorld::generate(ScenarioConfig::small());
            run_study(&world, &ScanEngine::rapid7(), &StudyConfig::default())
        })
    }

    #[test]
    fn series_covers_all_snapshots() {
        let s = study();
        assert_eq!(s.snapshots.len(), 31);
        assert_eq!(s.netflix.initial.len(), 31);
    }

    #[test]
    fn google_grows_roughly_3x() {
        let s = study();
        let series = s.confirmed_series(Hg::Google);
        let (start, end) = (series[0] as f64, series[30] as f64);
        assert!(start > 0.0);
        let growth = end / start;
        assert!((2.5..5.0).contains(&growth), "growth {growth}");
    }

    #[test]
    fn akamai_peaks_then_declines() {
        let s = study();
        let series = s.confirmed_series(Hg::Akamai);
        let peak = *series.iter().max().unwrap();
        let peak_idx = series.iter().position(|v| *v == peak).unwrap();
        assert!((12..26).contains(&peak_idx), "peak at {peak_idx}");
        assert!(series[30] < peak, "no decline: {} vs {peak}", series[30]);
    }

    #[test]
    fn facebook_zero_before_launch() {
        let s = study();
        let series = s.confirmed_series(Hg::Facebook);
        assert!(series[..10].iter().all(|v| *v <= 1), "{series:?}");
        assert!(series[30] > series[15]);
    }

    #[test]
    fn netflix_envelope_ordering() {
        let s = study();
        for t in 0..31 {
            assert!(
                s.netflix.initial[t] <= s.netflix.with_expired[t],
                "t={t}: initial {} > with_expired {}",
                s.netflix.initial[t],
                s.netflix.with_expired[t]
            );
            assert!(
                s.netflix.with_expired[t] <= s.netflix.with_non_tls[t],
                "t={t}"
            );
        }
        // Inside the expired window the envelope gap must be substantial.
        let t = 18;
        assert!(
            s.netflix.with_expired[t] > s.netflix.initial[t] * 2,
            "no expired-restoration effect at t={t}: {} vs {}",
            s.netflix.with_expired[t],
            s.netflix.initial[t]
        );
        // The non-TLS restoration must add ASes during the HTTP window.
        assert!(
            s.netflix.with_non_tls[t] > s.netflix.with_expired[t],
            "non-TLS restoration added nothing at t={t}"
        );
    }

    #[test]
    fn candidates_superset_of_confirmed() {
        let s = study();
        for snap in &s.snapshots {
            for hg in hgsim::TOP4 {
                let r = &snap.per_hg[&hg];
                assert!(
                    r.confirmed_ases.is_subset(&r.candidate_ases),
                    "{hg} at {}",
                    snap.snapshot_idx
                );
            }
        }
    }
}
