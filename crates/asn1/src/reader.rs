use crate::writer::{is_printable_char, MAX_LEN};
use crate::{Error, Oid, Result, Tag};
use timebase::Timestamp;

/// A zero-copy DER reader over a byte slice.
///
/// The reader is strict: it rejects indefinite lengths, non-minimal length
/// encodings, and (for typed accessors) content that violates the type's
/// encoding rules. Constructed elements hand back a nested `Reader` over
/// their content.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(input: &'a [u8]) -> Self {
        Self { input, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fail unless the input is fully consumed.
    pub fn expect_end(&self) -> Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(Error::TrailingBytes)
        }
    }

    /// Peek at the next element's tag without consuming it.
    pub fn peek_tag(&self) -> Result<Tag> {
        if self.pos >= self.input.len() {
            return Err(Error::UnexpectedEof);
        }
        Ok(Tag(self.input[self.pos]))
    }

    /// Read the next TLV of any tag; returns `(tag, content)`.
    pub fn read_any(&mut self) -> Result<(Tag, &'a [u8])> {
        let tag = self.peek_tag()?;
        self.pos += 1;
        let len = self.read_length()?;
        if self.remaining() < len {
            return Err(Error::UnexpectedEof);
        }
        let content = &self.input[self.pos..self.pos + len];
        self.pos += len;
        Ok((tag, content))
    }

    /// Read the next TLV including its header, returned as the raw encoded
    /// bytes. Useful for re-hashing the exact `tbsCertificate` encoding.
    pub fn read_raw_tlv(&mut self) -> Result<&'a [u8]> {
        let start = self.pos;
        self.read_any()?;
        Ok(&self.input[start..self.pos])
    }

    /// Read an element with exactly the expected tag; returns its content.
    pub fn read_expected(&mut self, expected: Tag) -> Result<&'a [u8]> {
        let tag = self.peek_tag()?;
        if tag != expected {
            return Err(Error::UnexpectedTag {
                expected: expected.0,
                found: tag.0,
            });
        }
        let (_, content) = self.read_any()?;
        Ok(content)
    }

    /// If the next element has the given tag, read and return it.
    pub fn read_optional(&mut self, tag: Tag) -> Result<Option<&'a [u8]>> {
        match self.peek_tag() {
            Ok(t) if t == tag => Ok(Some(self.read_expected(tag)?)),
            _ => Ok(None),
        }
    }

    /// Read a constructed element and return a reader over its content.
    pub fn read_nested(&mut self, tag: Tag) -> Result<Reader<'a>> {
        let content = self.read_expected(tag)?;
        Ok(Reader::new(content))
    }

    pub fn read_sequence(&mut self) -> Result<Reader<'a>> {
        self.read_nested(Tag::SEQUENCE)
    }

    pub fn read_set(&mut self) -> Result<Reader<'a>> {
        self.read_nested(Tag::SET)
    }

    pub fn read_boolean(&mut self) -> Result<bool> {
        let content = self.read_expected(Tag::BOOLEAN)?;
        match content {
            [0x00] => Ok(false),
            [0xff] => Ok(true),
            _ => Err(Error::InvalidContent("BOOLEAN must be 0x00 or 0xff")),
        }
    }

    /// Read a non-negative INTEGER that fits in a `u64`.
    pub fn read_integer_u64(&mut self) -> Result<u64> {
        let bytes = self.read_integer_bytes()?;
        if bytes.len() > 8 {
            return Err(Error::Oversized);
        }
        let mut acc: u64 = 0;
        for &b in bytes {
            acc = (acc << 8) | u64::from(b);
        }
        Ok(acc)
    }

    /// Read an INTEGER's magnitude bytes (leading 0x00 sign byte stripped).
    /// Negative INTEGERs are rejected — X.509 never uses them.
    pub fn read_integer_bytes(&mut self) -> Result<&'a [u8]> {
        let content = self.read_expected(Tag::INTEGER)?;
        if content.is_empty() {
            return Err(Error::InvalidContent("empty INTEGER"));
        }
        if content[0] & 0x80 != 0 {
            return Err(Error::InvalidContent("negative INTEGER"));
        }
        if content.len() > 1 && content[0] == 0 && content[1] & 0x80 == 0 {
            return Err(Error::InvalidContent("non-minimal INTEGER"));
        }
        Ok(if content[0] == 0 && content.len() > 1 {
            &content[1..]
        } else {
            content
        })
    }

    pub fn read_null(&mut self) -> Result<()> {
        let content = self.read_expected(Tag::NULL)?;
        if content.is_empty() {
            Ok(())
        } else {
            Err(Error::InvalidContent("NULL with content"))
        }
    }

    pub fn read_oid(&mut self) -> Result<Oid> {
        let content = self.read_expected(Tag::OID)?;
        Oid::from_der_content(content)
    }

    pub fn read_octet_string(&mut self) -> Result<&'a [u8]> {
        self.read_expected(Tag::OCTET_STRING)
    }

    /// Read a BIT STRING, requiring zero unused bits.
    pub fn read_bit_string(&mut self) -> Result<&'a [u8]> {
        let content = self.read_expected(Tag::BIT_STRING)?;
        match content.split_first() {
            Some((0, rest)) => Ok(rest),
            Some(_) => Err(Error::InvalidContent("BIT STRING with unused bits")),
            None => Err(Error::InvalidContent("empty BIT STRING")),
        }
    }

    pub fn read_utf8_string(&mut self) -> Result<&'a str> {
        let content = self.read_expected(Tag::UTF8_STRING)?;
        std::str::from_utf8(content).map_err(|_| Error::InvalidContent("invalid UTF-8"))
    }

    pub fn read_printable_string(&mut self) -> Result<&'a str> {
        let content = self.read_expected(Tag::PRINTABLE_STRING)?;
        if !content.iter().all(|&b| is_printable_char(b)) {
            return Err(Error::InvalidContent("invalid PrintableString"));
        }
        std::str::from_utf8(content).map_err(|_| Error::InvalidContent("invalid PrintableString"))
    }

    pub fn read_ia5_string(&mut self) -> Result<&'a str> {
        let content = self.read_expected(Tag::IA5_STRING)?;
        if !content.iter().all(|&b| b < 0x80) {
            return Err(Error::InvalidContent("invalid IA5String"));
        }
        std::str::from_utf8(content).map_err(|_| Error::InvalidContent("invalid IA5String"))
    }

    /// Read a directory string: UTF8String or PrintableString.
    pub fn read_directory_string(&mut self) -> Result<&'a str> {
        match self.peek_tag()? {
            Tag::UTF8_STRING => self.read_utf8_string(),
            Tag::PRINTABLE_STRING => self.read_printable_string(),
            t => Err(Error::UnexpectedTag {
                expected: Tag::UTF8_STRING.0,
                found: t.0,
            }),
        }
    }

    /// Read a Time: UTCTime or GeneralizedTime.
    pub fn read_time(&mut self) -> Result<Timestamp> {
        match self.peek_tag()? {
            Tag::UTC_TIME => {
                let content = self.read_expected(Tag::UTC_TIME)?;
                crate::decode_utc_time(content)
            }
            Tag::GENERALIZED_TIME => {
                let content = self.read_expected(Tag::GENERALIZED_TIME)?;
                crate::decode_generalized_time(content)
            }
            t => Err(Error::UnexpectedTag {
                expected: Tag::UTC_TIME.0,
                found: t.0,
            }),
        }
    }

    fn read_length(&mut self) -> Result<usize> {
        if self.pos >= self.input.len() {
            return Err(Error::UnexpectedEof);
        }
        let first = self.input[self.pos];
        self.pos += 1;
        if first < 0x80 {
            return Ok(usize::from(first));
        }
        if first == 0x80 {
            return Err(Error::InvalidLength); // indefinite form
        }
        let n = usize::from(first & 0x7f);
        if n > 4 {
            return Err(Error::Oversized);
        }
        if self.remaining() < n {
            return Err(Error::UnexpectedEof);
        }
        let mut len: usize = 0;
        for _ in 0..n {
            len = (len << 8) | usize::from(self.input[self.pos]);
            self.pos += 1;
        }
        // DER: long form must be necessary and minimal.
        if len < 0x80 || (n > 1 && len < (1 << (8 * (n - 1)))) {
            return Err(Error::InvalidLength);
        }
        if len > MAX_LEN {
            return Err(Error::Oversized);
        }
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Writer;
    use proptest::prelude::*;

    #[test]
    fn read_what_writer_wrote() {
        let mut w = Writer::new();
        w.write_constructed(Tag::SEQUENCE, |w| {
            w.write_integer(42);
            w.write_utf8_string("google");
            w.write_boolean(true);
        });
        let der = w.finish();
        let mut r = Reader::new(&der);
        let mut seq = r.read_sequence().unwrap();
        assert_eq!(seq.read_integer_u64().unwrap(), 42);
        assert_eq!(seq.read_utf8_string().unwrap(), "google");
        assert!(seq.read_boolean().unwrap());
        seq.expect_end().unwrap();
        r.expect_end().unwrap();
    }

    #[test]
    fn rejects_indefinite_length() {
        let der = [0x30, 0x80, 0x00, 0x00];
        let mut r = Reader::new(&der);
        assert_eq!(r.read_sequence().unwrap_err(), Error::InvalidLength);
    }

    #[test]
    fn rejects_non_minimal_length() {
        // 0x81 0x05 encodes length 5 in long form; must be short form.
        let der = [0x04, 0x81, 0x05, 1, 2, 3, 4, 5];
        let mut r = Reader::new(&der);
        assert_eq!(r.read_octet_string().unwrap_err(), Error::InvalidLength);
    }

    #[test]
    fn rejects_truncated_content() {
        let der = [0x04, 0x05, 1, 2];
        let mut r = Reader::new(&der);
        assert_eq!(r.read_octet_string().unwrap_err(), Error::UnexpectedEof);
    }

    #[test]
    fn rejects_negative_and_non_minimal_integers() {
        let mut r = Reader::new(&[0x02, 0x01, 0x80]);
        assert!(matches!(
            r.read_integer_u64(),
            Err(Error::InvalidContent(_))
        ));
        let mut r = Reader::new(&[0x02, 0x02, 0x00, 0x05]);
        assert!(matches!(
            r.read_integer_u64(),
            Err(Error::InvalidContent(_))
        ));
    }

    #[test]
    fn optional_elements() {
        let mut w = Writer::new();
        w.write_integer(7);
        let der = w.finish();
        let mut r = Reader::new(&der);
        assert!(r.read_optional(Tag::BOOLEAN).unwrap().is_none());
        assert!(r.read_optional(Tag::INTEGER).unwrap().is_some());
    }

    #[test]
    fn trailing_bytes_detected() {
        let der = [0x05, 0x00, 0xde];
        let mut r = Reader::new(&der);
        r.read_null().unwrap();
        assert_eq!(r.expect_end().unwrap_err(), Error::TrailingBytes);
    }

    #[test]
    fn raw_tlv_covers_header() {
        let mut w = Writer::new();
        w.write_integer(300);
        let der = w.finish();
        let mut r = Reader::new(&der);
        assert_eq!(r.read_raw_tlv().unwrap(), der.as_slice());
    }

    proptest! {
        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut r = Reader::new(&bytes);
            // Exercise every accessor; none may panic.
            let _ = r.clone().read_any();
            let _ = r.clone().read_sequence();
            let _ = r.clone().read_integer_u64();
            let _ = r.clone().read_oid();
            let _ = r.clone().read_bit_string();
            let _ = r.clone().read_time();
            let _ = r.clone().read_printable_string();
            let _ = r.clone().read_ia5_string();
            let _ = r.read_utf8_string();
        }

        #[test]
        fn octet_string_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let mut w = Writer::new();
            w.write_octet_string(&bytes);
            let der = w.finish();
            let mut r = Reader::new(&der);
            prop_assert_eq!(r.read_octet_string().unwrap(), bytes.as_slice());
            r.expect_end().unwrap();
        }

        #[test]
        fn integer_roundtrip(v in any::<u64>()) {
            let mut w = Writer::new();
            w.write_integer(v);
            let der = w.finish();
            let mut r = Reader::new(&der);
            prop_assert_eq!(r.read_integer_u64().unwrap(), v);
        }
    }
}
