use std::fmt;

/// Errors produced while reading or writing DER.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Input ended before a complete TLV could be read.
    UnexpectedEof,
    /// A tag other than the expected one was encountered.
    UnexpectedTag { expected: u8, found: u8 },
    /// Length octets were malformed, non-minimal, or indefinite.
    InvalidLength,
    /// The element's content bytes violate the type's encoding rules.
    InvalidContent(&'static str),
    /// Trailing bytes remained after the outermost element.
    TrailingBytes,
    /// An OID had fewer than two arcs or an arc overflowed.
    InvalidOid,
    /// A time string was malformed or out of range.
    InvalidTime,
    /// A value was too large for this implementation (e.g. > 16 MiB element).
    Oversized,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedEof => write!(f, "unexpected end of DER input"),
            Error::UnexpectedTag { expected, found } => {
                write!(
                    f,
                    "unexpected tag: expected 0x{expected:02x}, found 0x{found:02x}"
                )
            }
            Error::InvalidLength => write!(f, "invalid or non-minimal DER length"),
            Error::InvalidContent(what) => write!(f, "invalid DER content: {what}"),
            Error::TrailingBytes => write!(f, "trailing bytes after DER element"),
            Error::InvalidOid => write!(f, "invalid object identifier"),
            Error::InvalidTime => write!(f, "invalid ASN.1 time"),
            Error::Oversized => write!(f, "DER element exceeds implementation limit"),
        }
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;
