//! Minimal, strict DER (Distinguished Encoding Rules) reader and writer.
//!
//! This crate implements the ASN.1 subset required by the simulated X.509
//! PKI: definite-length TLV framing, universal types (BOOLEAN, INTEGER, BIT
//! STRING, OCTET STRING, NULL, OBJECT IDENTIFIER, UTF8String,
//! PrintableString, IA5String, SEQUENCE, SET, UTCTime, GeneralizedTime) and
//! context-specific tagging. Encoding is canonical: the writer always emits
//! minimal lengths, and the reader rejects non-minimal or indefinite forms,
//! matching how production TLS stacks treat certificates.

mod error;
mod oid;
mod reader;
mod tag;
mod time;
mod writer;

pub use error::{Error, Result};
pub use oid::Oid;
pub use reader::Reader;
pub use tag::{Class, Tag};
pub use time::{
    decode_generalized_time, decode_utc_time, encode_generalized_time, encode_utc_time,
};
pub use writer::Writer;

/// Well-known object identifiers used by the `x509` crate.
pub mod oids {
    use crate::Oid;

    /// id-at-commonName (2.5.4.3)
    pub fn common_name() -> Oid {
        Oid::from_arcs(&[2, 5, 4, 3]).expect("static OID")
    }
    /// id-at-organizationName (2.5.4.10)
    pub fn organization() -> Oid {
        Oid::from_arcs(&[2, 5, 4, 10]).expect("static OID")
    }
    /// id-at-countryName (2.5.4.6)
    pub fn country() -> Oid {
        Oid::from_arcs(&[2, 5, 4, 6]).expect("static OID")
    }
    /// id-ce-subjectAltName (2.5.29.17)
    pub fn subject_alt_name() -> Oid {
        Oid::from_arcs(&[2, 5, 29, 17]).expect("static OID")
    }
    /// id-ce-basicConstraints (2.5.29.19)
    pub fn basic_constraints() -> Oid {
        Oid::from_arcs(&[2, 5, 29, 19]).expect("static OID")
    }
    /// id-ce-keyUsage (2.5.29.15)
    pub fn key_usage() -> Oid {
        Oid::from_arcs(&[2, 5, 29, 15]).expect("static OID")
    }
    /// Simulated signature algorithm "simsig-hmac-sha256" parked in a private
    /// enterprise arc (1.3.6.1.4.1.99999.1.1).
    pub fn simsig_hmac_sha256() -> Oid {
        Oid::from_arcs(&[1, 3, 6, 1, 4, 1, 99999, 1, 1]).expect("static OID")
    }
    /// Simulated public key algorithm (1.3.6.1.4.1.99999.1.2).
    pub fn simsig_key() -> Oid {
        Oid::from_arcs(&[1, 3, 6, 1, 4, 1, 99999, 1, 2]).expect("static OID")
    }
}
