use crate::{Error, Result};
use std::fmt;

/// An object identifier, stored in its DER content encoding (base-128 arcs,
/// first two arcs packed). Comparison and hashing operate on the canonical
/// byte form, so OIDs are cheap map keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid {
    der: Vec<u8>,
}

impl Oid {
    /// Build an OID from its arc values, e.g. `[2, 5, 4, 10]`.
    pub fn from_arcs(arcs: &[u64]) -> Result<Self> {
        if arcs.len() < 2 {
            return Err(Error::InvalidOid);
        }
        let (first, second) = (arcs[0], arcs[1]);
        if first > 2 || (first < 2 && second >= 40) {
            return Err(Error::InvalidOid);
        }
        let mut der = Vec::with_capacity(arcs.len() + 2);
        encode_base128(first * 40 + second, &mut der);
        for &arc in &arcs[2..] {
            encode_base128(arc, &mut der);
        }
        Ok(Self { der })
    }

    /// Wrap raw DER content bytes, validating base-128 structure.
    pub fn from_der_content(bytes: &[u8]) -> Result<Self> {
        if bytes.is_empty() {
            return Err(Error::InvalidOid);
        }
        // Validate: every subidentifier ends with a byte < 0x80, no leading 0x80.
        let mut start_of_arc = true;
        for (i, &b) in bytes.iter().enumerate() {
            if start_of_arc && b == 0x80 {
                return Err(Error::InvalidOid); // non-minimal
            }
            start_of_arc = b & 0x80 == 0;
            if i == bytes.len() - 1 && b & 0x80 != 0 {
                return Err(Error::InvalidOid); // truncated arc
            }
        }
        Ok(Self {
            der: bytes.to_vec(),
        })
    }

    /// The DER content octets (without tag/length).
    pub fn der_content(&self) -> &[u8] {
        &self.der
    }

    /// Decode back into arc values.
    pub fn arcs(&self) -> Vec<u64> {
        let mut arcs = Vec::new();
        let mut acc: u64 = 0;
        for &b in &self.der {
            acc = (acc << 7) | u64::from(b & 0x7f);
            if b & 0x80 == 0 {
                if arcs.is_empty() {
                    let first = (acc / 40).min(2);
                    arcs.push(first);
                    arcs.push(acc - first * 40);
                } else {
                    arcs.push(acc);
                }
                acc = 0;
            }
        }
        arcs
    }
}

fn encode_base128(mut value: u64, out: &mut Vec<u8>) {
    let mut tmp = [0u8; 10];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            break;
        }
    }
    let n = tmp.len();
    for (j, b) in tmp[i..].iter().enumerate() {
        let last = i + j == n - 1;
        out.push(b | if last { 0 } else { 0x80 });
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let arcs = self.arcs();
        for (i, a) in arcs.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn organization_oid_encoding() {
        let oid = Oid::from_arcs(&[2, 5, 4, 10]).unwrap();
        assert_eq!(oid.der_content(), &[0x55, 0x04, 0x0a]);
        assert_eq!(oid.to_string(), "2.5.4.10");
    }

    #[test]
    fn multi_byte_arcs() {
        // 1.3.6.1.4.1.99999.1.1 -- 99999 needs three base-128 bytes.
        let oid = Oid::from_arcs(&[1, 3, 6, 1, 4, 1, 99999, 1, 1]).unwrap();
        assert_eq!(oid.arcs(), vec![1, 3, 6, 1, 4, 1, 99999, 1, 1]);
    }

    #[test]
    fn rejects_bad_first_arcs() {
        assert!(Oid::from_arcs(&[3, 1]).is_err());
        assert!(Oid::from_arcs(&[0, 40]).is_err());
        assert!(Oid::from_arcs(&[1]).is_err());
    }

    #[test]
    fn rejects_malformed_content() {
        assert!(Oid::from_der_content(&[]).is_err());
        assert!(Oid::from_der_content(&[0x80, 0x01]).is_err()); // non-minimal
        assert!(Oid::from_der_content(&[0x81]).is_err()); // truncated
        assert!(Oid::from_der_content(&[0x55, 0x04, 0x0a]).is_ok());
    }

    proptest! {
        #[test]
        fn arcs_roundtrip(
            first in 0u64..=2,
            second in 0u64..40,
            rest in proptest::collection::vec(0u64..=u64::from(u32::MAX), 0..8)
        ) {
            let mut arcs = vec![first, second];
            arcs.extend(rest);
            let oid = Oid::from_arcs(&arcs).unwrap();
            prop_assert_eq!(oid.arcs(), arcs);
            // Content form re-validates.
            let rewrapped = Oid::from_der_content(oid.der_content()).unwrap();
            prop_assert_eq!(rewrapped, oid);
        }
    }
}
