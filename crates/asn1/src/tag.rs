/// ASN.1 tag class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    Universal,
    Application,
    ContextSpecific,
    Private,
}

/// A single-octet ASN.1 tag (low-tag-number form only, sufficient for X.509).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u8);

impl Tag {
    pub const BOOLEAN: Tag = Tag(0x01);
    pub const INTEGER: Tag = Tag(0x02);
    pub const BIT_STRING: Tag = Tag(0x03);
    pub const OCTET_STRING: Tag = Tag(0x04);
    pub const NULL: Tag = Tag(0x05);
    pub const OID: Tag = Tag(0x06);
    pub const UTF8_STRING: Tag = Tag(0x0c);
    pub const PRINTABLE_STRING: Tag = Tag(0x13);
    pub const IA5_STRING: Tag = Tag(0x16);
    pub const UTC_TIME: Tag = Tag(0x17);
    pub const GENERALIZED_TIME: Tag = Tag(0x18);
    pub const SEQUENCE: Tag = Tag(0x30);
    pub const SET: Tag = Tag(0x31);

    /// Context-specific constructed tag `[n]`, e.g. X.509 `[0]` version.
    pub const fn context_constructed(n: u8) -> Tag {
        Tag(0xa0 | n)
    }

    /// Context-specific primitive tag `[n]`, e.g. SAN dNSName `[2]`.
    pub const fn context_primitive(n: u8) -> Tag {
        Tag(0x80 | n)
    }

    pub fn class(&self) -> Class {
        match self.0 >> 6 {
            0 => Class::Universal,
            1 => Class::Application,
            2 => Class::ContextSpecific,
            _ => Class::Private,
        }
    }

    pub fn is_constructed(&self) -> bool {
        self.0 & 0x20 != 0
    }

    /// The tag number within its class.
    pub fn number(&self) -> u8 {
        self.0 & 0x1f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes() {
        assert_eq!(Tag::SEQUENCE.class(), Class::Universal);
        assert_eq!(Tag::context_constructed(3).class(), Class::ContextSpecific);
        assert_eq!(Tag(0xc0).class(), Class::Private);
        assert_eq!(Tag(0x40).class(), Class::Application);
    }

    #[test]
    fn constructed_bit() {
        assert!(Tag::SEQUENCE.is_constructed());
        assert!(!Tag::INTEGER.is_constructed());
        assert!(Tag::context_constructed(0).is_constructed());
        assert!(!Tag::context_primitive(2).is_constructed());
    }

    #[test]
    fn numbers() {
        assert_eq!(Tag::SEQUENCE.number(), 16);
        assert_eq!(Tag::context_primitive(2).number(), 2);
    }
}
