use crate::{Error, Result};
use timebase::{Date, Timestamp};

/// Encode a timestamp as a DER UTCTime string (`YYMMDDHHMMSSZ`).
///
/// Returns `None` outside the RFC 5280 UTCTime window (1950-2049).
pub fn encode_utc_time(t: Timestamp) -> Option<String> {
    let (y, mo, d, h, mi, s) = t.civil();
    if !(1950..=2049).contains(&y) {
        return None;
    }
    let yy = y % 100;
    Some(format!("{yy:02}{mo:02}{d:02}{h:02}{mi:02}{s:02}Z"))
}

/// Encode a timestamp as a DER GeneralizedTime string (`YYYYMMDDHHMMSSZ`).
pub fn encode_generalized_time(t: Timestamp) -> String {
    let (y, mo, d, h, mi, s) = t.civil();
    format!("{y:04}{mo:02}{d:02}{h:02}{mi:02}{s:02}Z")
}

/// Decode a UTCTime content string. Per RFC 5280, two-digit years `>= 50`
/// map to 19xx and `< 50` map to 20xx.
pub fn decode_utc_time(content: &[u8]) -> Result<Timestamp> {
    if content.len() != 13 || content[12] != b'Z' {
        return Err(Error::InvalidTime);
    }
    let yy = parse_2(&content[0..2])?;
    let year = if yy >= 50 { 1900 + yy } else { 2000 + yy };
    decode_components(year, &content[2..12])
}

/// Decode a GeneralizedTime content string (whole-second, Zulu form only,
/// as DER requires for X.509).
pub fn decode_generalized_time(content: &[u8]) -> Result<Timestamp> {
    if content.len() != 15 || content[14] != b'Z' {
        return Err(Error::InvalidTime);
    }
    let year = parse_4(&content[0..4])?;
    decode_components(year, &content[4..14])
}

fn decode_components(year: i32, rest: &[u8]) -> Result<Timestamp> {
    let month = parse_2(rest.get(0..2).ok_or(Error::InvalidTime)?)? as u8;
    let day = parse_2(&rest[2..4])? as u8;
    let hour = parse_2(&rest[4..6])? as u8;
    let minute = parse_2(&rest[6..8])? as u8;
    let second = parse_2(&rest[8..10])? as u8;
    if hour > 23 || minute > 59 || second > 59 {
        return Err(Error::InvalidTime);
    }
    let date = Date::try_new(year, month, day).ok_or(Error::InvalidTime)?;
    Ok(date
        .midnight()
        .plus_seconds(i64::from(hour) * 3600 + i64::from(minute) * 60 + i64::from(second)))
}

fn parse_2(b: &[u8]) -> Result<i32> {
    parse_digits(b)
}

fn parse_4(b: &[u8]) -> Result<i32> {
    parse_digits(b)
}

fn parse_digits(b: &[u8]) -> Result<i32> {
    let mut acc = 0i32;
    for &c in b {
        if !c.is_ascii_digit() {
            return Err(Error::InvalidTime);
        }
        acc = acc * 10 + i32::from(c - b'0');
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn utc_time_roundtrip() {
        let t = Timestamp::from_civil(2019, 11, 18, 7, 30, 0);
        let s = encode_utc_time(t).unwrap();
        assert_eq!(s, "191118073000Z");
        assert_eq!(decode_utc_time(s.as_bytes()).unwrap(), t);
    }

    #[test]
    fn utc_time_century_pivot() {
        // 50 -> 1950, 49 -> 2049
        assert_eq!(
            decode_utc_time(b"500101000000Z").unwrap(),
            Timestamp::from_civil(1950, 1, 1, 0, 0, 0)
        );
        assert_eq!(
            decode_utc_time(b"491231235959Z").unwrap(),
            Timestamp::from_civil(2049, 12, 31, 23, 59, 59)
        );
    }

    #[test]
    fn utc_time_rejects_out_of_window_encode() {
        assert!(encode_utc_time(Timestamp::from_civil(2050, 1, 1, 0, 0, 0)).is_none());
        assert!(encode_utc_time(Timestamp::from_civil(1949, 1, 1, 0, 0, 0)).is_none());
    }

    #[test]
    fn generalized_time_roundtrip() {
        let t = Timestamp::from_civil(2051, 6, 15, 23, 59, 59);
        let s = encode_generalized_time(t);
        assert_eq!(s, "20510615235959Z");
        assert_eq!(decode_generalized_time(s.as_bytes()).unwrap(), t);
    }

    #[test]
    fn malformed_times_rejected() {
        assert!(decode_utc_time(b"19111807300Z").is_err()); // too short
        assert!(decode_utc_time(b"191118073000X").is_err()); // no Z
        assert!(decode_utc_time(b"191318073000Z").is_err()); // month 13
        assert!(decode_utc_time(b"190230073000Z").is_err()); // Feb 30
        assert!(decode_utc_time(b"1911180730a0Z").is_err()); // non-digit
        assert!(decode_generalized_time(b"20191118073000").is_err()); // no Z
        assert!(decode_utc_time(b"191118243000Z").is_err()); // hour 24
    }

    proptest! {
        #[test]
        fn utc_roundtrip_in_window(
            year in 1950i32..=2049, month in 1u8..=12, day in 1u8..=28,
            hour in 0u8..24, minute in 0u8..60, second in 0u8..60
        ) {
            let t = Timestamp::from_civil(year, month, day, hour, minute, second);
            let s = encode_utc_time(t).unwrap();
            prop_assert_eq!(decode_utc_time(s.as_bytes()).unwrap(), t);
        }

        #[test]
        fn generalized_roundtrip(
            year in 1000i32..=9999, month in 1u8..=12, day in 1u8..=28,
            hour in 0u8..24, minute in 0u8..60, second in 0u8..60
        ) {
            let t = Timestamp::from_civil(year, month, day, hour, minute, second);
            let s = encode_generalized_time(t);
            prop_assert_eq!(decode_generalized_time(s.as_bytes()).unwrap(), t);
        }

        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..20)) {
            let _ = decode_utc_time(&bytes);
            let _ = decode_generalized_time(&bytes);
        }
    }
}
