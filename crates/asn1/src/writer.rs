use crate::{Oid, Tag};
use timebase::Timestamp;

/// Maximum element size this implementation will produce or accept (16 MiB).
pub(crate) const MAX_LEN: usize = 16 * 1024 * 1024;

/// An append-only DER writer producing canonical encodings.
///
/// Composite structures are written with [`Writer::write_constructed`], which
/// buffers the body and back-patches the definite length:
///
/// ```
/// use offnet_asn1::{Writer, Tag};
/// let mut w = Writer::new();
/// w.write_constructed(Tag::SEQUENCE, |w| {
///     w.write_integer(5);
///     w.write_utf8_string("hi");
/// });
/// let der = w.finish();
/// assert_eq!(der[0], 0x30);
/// ```
#[derive(Debug, Default)]
pub struct Writer {
    out: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            out: Vec::with_capacity(cap),
        }
    }

    /// Finish and return the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.out
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Write a primitive TLV with the given content octets.
    pub fn write_primitive(&mut self, tag: Tag, content: &[u8]) {
        assert!(content.len() <= MAX_LEN, "DER element too large");
        self.out.push(tag.0);
        write_length(&mut self.out, content.len());
        self.out.extend_from_slice(content);
    }

    /// Write a constructed TLV whose body is produced by `f`.
    pub fn write_constructed(&mut self, tag: Tag, f: impl FnOnce(&mut Writer)) {
        let mut inner = Writer::new();
        f(&mut inner);
        self.write_primitive(tag, &inner.out);
    }

    /// Append pre-encoded DER verbatim (must already be a valid TLV run).
    pub fn write_raw(&mut self, der: &[u8]) {
        self.out.extend_from_slice(der);
    }

    pub fn write_boolean(&mut self, value: bool) {
        self.write_primitive(Tag::BOOLEAN, &[if value { 0xff } else { 0x00 }]);
    }

    /// Write a non-negative INTEGER in minimal two's-complement form.
    pub fn write_integer(&mut self, value: u64) {
        let bytes = value.to_be_bytes();
        let mut start = bytes.iter().position(|&b| b != 0).unwrap_or(7);
        // A leading byte with the high bit set needs a 0x00 prefix to stay
        // non-negative.
        let mut buf = Vec::with_capacity(9);
        if bytes[start] & 0x80 != 0 {
            buf.push(0);
        }
        while start < 8 {
            buf.push(bytes[start]);
            start += 1;
        }
        self.write_primitive(Tag::INTEGER, &buf);
    }

    /// Write an INTEGER from big-endian magnitude bytes (e.g. serial numbers).
    pub fn write_integer_bytes(&mut self, magnitude: &[u8]) {
        let trimmed: &[u8] = {
            let mut s = magnitude;
            while s.len() > 1 && s[0] == 0 {
                s = &s[1..];
            }
            s
        };
        let mut buf = Vec::with_capacity(trimmed.len() + 1);
        if trimmed.is_empty() || trimmed[0] & 0x80 != 0 {
            buf.push(0);
        }
        buf.extend_from_slice(trimmed);
        self.write_primitive(Tag::INTEGER, &buf);
    }

    pub fn write_null(&mut self) {
        self.write_primitive(Tag::NULL, &[]);
    }

    pub fn write_oid(&mut self, oid: &Oid) {
        self.write_primitive(Tag::OID, oid.der_content());
    }

    pub fn write_octet_string(&mut self, bytes: &[u8]) {
        self.write_primitive(Tag::OCTET_STRING, bytes);
    }

    /// Write a BIT STRING with zero unused bits (the only form X.509 needs
    /// for keys and signatures).
    pub fn write_bit_string(&mut self, bytes: &[u8]) {
        let mut content = Vec::with_capacity(bytes.len() + 1);
        content.push(0); // unused-bits count
        content.extend_from_slice(bytes);
        self.write_primitive(Tag::BIT_STRING, &content);
    }

    pub fn write_utf8_string(&mut self, s: &str) {
        self.write_primitive(Tag::UTF8_STRING, s.as_bytes());
    }

    pub fn write_printable_string(&mut self, s: &str) {
        debug_assert!(
            s.bytes().all(is_printable_char),
            "non-printable characters in PrintableString"
        );
        self.write_primitive(Tag::PRINTABLE_STRING, s.as_bytes());
    }

    pub fn write_ia5_string(&mut self, s: &str) {
        debug_assert!(s.bytes().all(|b| b < 0x80), "non-ASCII in IA5String");
        self.write_primitive(Tag::IA5_STRING, s.as_bytes());
    }

    /// Write a UTCTime (`YYMMDDHHMMSSZ`); valid only for years 1950-2049.
    pub fn write_utc_time(&mut self, t: Timestamp) {
        let s = crate::encode_utc_time(t).expect("timestamp out of UTCTime range");
        self.write_primitive(Tag::UTC_TIME, s.as_bytes());
    }

    /// Write a GeneralizedTime (`YYYYMMDDHHMMSSZ`).
    pub fn write_generalized_time(&mut self, t: Timestamp) {
        let s = crate::encode_generalized_time(t);
        self.write_primitive(Tag::GENERALIZED_TIME, s.as_bytes());
    }
}

pub(crate) fn is_printable_char(b: u8) -> bool {
    matches!(b,
        b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9'
        | b' ' | b'\'' | b'(' | b')' | b'+' | b',' | b'-' | b'.' | b'/' | b':' | b'=' | b'?')
}

/// Write a definite length in minimal form.
fn write_length(out: &mut Vec<u8>, len: usize) {
    if len < 0x80 {
        out.push(len as u8);
    } else {
        let bytes = (len as u64).to_be_bytes();
        let skip = bytes.iter().position(|&b| b != 0).expect("len > 0");
        let n = 8 - skip;
        out.push(0x80 | n as u8);
        out.extend_from_slice(&bytes[skip..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_form_length() {
        let mut w = Writer::new();
        w.write_octet_string(&[1, 2, 3]);
        assert_eq!(w.finish(), vec![0x04, 0x03, 1, 2, 3]);
    }

    #[test]
    fn long_form_length() {
        let mut w = Writer::new();
        w.write_octet_string(&vec![0xabu8; 300]);
        let der = w.finish();
        assert_eq!(&der[..4], &[0x04, 0x82, 0x01, 0x2c]);
        assert_eq!(der.len(), 4 + 300);
    }

    #[test]
    fn integer_minimal_encoding() {
        let cases: [(u64, &[u8]); 5] = [
            (0, &[0x02, 0x01, 0x00]),
            (127, &[0x02, 0x01, 0x7f]),
            (128, &[0x02, 0x02, 0x00, 0x80]),
            (256, &[0x02, 0x02, 0x01, 0x00]),
            (65535, &[0x02, 0x03, 0x00, 0xff, 0xff]),
        ];
        for (value, expected) in cases {
            let mut w = Writer::new();
            w.write_integer(value);
            assert_eq!(w.finish(), expected, "value={value}");
        }
    }

    #[test]
    fn integer_bytes_strips_leading_zeros() {
        let mut w = Writer::new();
        w.write_integer_bytes(&[0x00, 0x00, 0x01, 0x02]);
        assert_eq!(w.finish(), vec![0x02, 0x02, 0x01, 0x02]);

        let mut w = Writer::new();
        w.write_integer_bytes(&[0xff]);
        assert_eq!(w.finish(), vec![0x02, 0x02, 0x00, 0xff]);
    }

    #[test]
    fn booleans() {
        let mut w = Writer::new();
        w.write_boolean(true);
        w.write_boolean(false);
        assert_eq!(w.finish(), vec![0x01, 0x01, 0xff, 0x01, 0x01, 0x00]);
    }

    #[test]
    fn nested_sequence() {
        let mut w = Writer::new();
        w.write_constructed(Tag::SEQUENCE, |w| {
            w.write_integer(1);
            w.write_constructed(Tag::SEQUENCE, |w| {
                w.write_null();
            });
        });
        assert_eq!(
            w.finish(),
            vec![0x30, 0x07, 0x02, 0x01, 0x01, 0x30, 0x02, 0x05, 0x00]
        );
    }

    #[test]
    fn bit_string_has_unused_bits_prefix() {
        let mut w = Writer::new();
        w.write_bit_string(&[0xde, 0xad]);
        assert_eq!(w.finish(), vec![0x03, 0x03, 0x00, 0xde, 0xad]);
    }
}

#[cfg(test)]
mod structure_proptests {
    use super::*;
    use crate::Reader;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn nested_sequences_roundtrip(
            ints in proptest::collection::vec(any::<u64>(), 0..8),
            strings in proptest::collection::vec("[a-zA-Z0-9 .-]{0,24}", 0..6),
            depth in 1usize..4
        ) {
            // Build SEQUENCE( ints..., SEQUENCE( ... SEQUENCE(strings...) ) ).
            fn build(w: &mut Writer, ints: &[u64], strings: &[String], depth: usize) {
                w.write_constructed(Tag::SEQUENCE, |w| {
                    for v in ints {
                        w.write_integer(*v);
                    }
                    if depth > 1 {
                        build(w, ints, strings, depth - 1);
                    } else {
                        for s in strings {
                            w.write_utf8_string(s);
                        }
                    }
                });
            }
            let mut w = Writer::new();
            build(&mut w, &ints, &strings, depth);
            let der = w.finish();

            fn check(r: &mut Reader<'_>, ints: &[u64], strings: &[String], depth: usize) {
                let mut seq = r.read_sequence().unwrap();
                for v in ints {
                    assert_eq!(seq.read_integer_u64().unwrap(), *v);
                }
                if depth > 1 {
                    check(&mut seq, ints, strings, depth - 1);
                } else {
                    for s in strings {
                        assert_eq!(seq.read_utf8_string().unwrap(), s.as_str());
                    }
                }
                seq.expect_end().unwrap();
            }
            let mut r = Reader::new(&der);
            check(&mut r, &ints, &strings, depth);
            r.expect_end().unwrap();
        }

        #[test]
        fn truncating_any_der_never_panics(
            payload in proptest::collection::vec(any::<u8>(), 0..512),
            cut_frac in 0.0f64..1.0
        ) {
            let mut w = Writer::new();
            w.write_constructed(Tag::SEQUENCE, |w| {
                w.write_octet_string(&payload);
                w.write_integer(payload.len() as u64);
            });
            let der = w.finish();
            let cut = ((der.len() as f64) * cut_frac) as usize;
            let mut r = Reader::new(&der[..cut]);
            // Whatever happens, no panic; a full parse only succeeds on the
            // full buffer.
            let ok = r.read_sequence().and_then(|mut s| {
                s.read_octet_string()?;
                s.read_integer_u64()?;
                s.expect_end()
            });
            if cut < der.len() {
                prop_assert!(ok.is_err());
            }
        }
    }
}
