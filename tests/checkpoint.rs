//! Crash-resumable studies: a run killed mid-study and relaunched over the
//! same checkpoint directory must render byte-identical output to an
//! uninterrupted run — for the sequential and the incremental driver,
//! clean and under injected faults/transients alike — and checkpoint
//! corruption or configuration drift must surface as typed errors with
//! remediation, never as silent wrong answers. The sharded pipeline
//! composes with checkpoints: segments orphaned by a mid-snapshot crash
//! are reused on resume, and a shifted start adopts the §6.2 fold
//! history the artifacts carry (asserted here, not merely probed).
//!
//! `OFFNET_FAULT_RATE` (shared with `tests/incremental.rs` and the CI
//! kill/resume job) sets the corruption rate for the faulted comparison.

use hgsim::{HgWorld, ScenarioConfig};
use offnet_bench::render_study;
use offnet_core::{
    run_study, run_study_checkpointed, run_study_incremental_checkpointed, study_fingerprint,
    CheckpointDriver, CheckpointError, CheckpointStore, ShardingConfig, StudyConfig,
};
use scanner::{FaultPlan, ScanEngine, TransientPolicy};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

fn world() -> &'static HgWorld {
    static W: OnceLock<HgWorld> = OnceLock::new();
    W.get_or_init(|| HgWorld::generate(ScenarioConfig::small()))
}

fn fault_rate() -> f64 {
    std::env::var("OFFNET_FAULT_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.1)
}

/// A process-unique checkpoint directory per test.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("offnet-ckpt-{tag}-{}", std::process::id()));
    // Stale artifacts from a previous crashed test run must not leak in.
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(range: (usize, usize)) -> StudyConfig {
    StudyConfig {
        snapshots: range,
        ..Default::default()
    }
}

fn store(
    dir: &PathBuf,
    engine: &ScanEngine,
    config: &StudyConfig,
    driver: CheckpointDriver,
) -> CheckpointStore {
    let fp = study_fingerprint(world(), engine, config, driver);
    CheckpointStore::open(dir, fp).expect("open store")
}

/// Sequential driver, killed after snapshot 25 and relaunched: the resumed
/// study renders byte-identical to an uninterrupted run, and the directory
/// ends up with one artifact per snapshot in the range.
#[test]
fn sequential_kill_resume_is_byte_identical() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let full_cfg = config((20, 30));
    let uninterrupted = run_study(w, &engine, &full_cfg);

    let dir = temp_dir("seq");
    // "Kill" after snapshot 25: run the prefix range to completion. The
    // fingerprint excludes the snapshot range, so the resumed (longer)
    // run adopts these artifacts.
    let killed_cfg = config((20, 25));
    let s = store(&dir, &engine, &killed_cfg, CheckpointDriver::Sequential);
    run_study_checkpointed(w, &engine, &killed_cfg, &s).expect("killed prefix run");

    let s = store(&dir, &engine, &full_cfg, CheckpointDriver::Sequential);
    let resumed = run_study_checkpointed(w, &engine, &full_cfg, &s).expect("resumed run");
    assert_eq!(
        render_study(&uninterrupted),
        render_study(&resumed),
        "resumed sequential study diverged from the uninterrupted run"
    );
    let artifacts = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "ckpt"))
        .count();
    assert_eq!(artifacts, 11, "one artifact per snapshot in 20..=30");

    // Re-running over the complete directory adopts everything and still
    // renders identically — resume is idempotent.
    let s = store(&dir, &engine, &full_cfg, CheckpointDriver::Sequential);
    let again = run_study_checkpointed(w, &engine, &full_cfg, &s).expect("idempotent run");
    assert_eq!(render_study(&uninterrupted), render_study(&again));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Incremental driver, killed and relaunched: byte-identical output, and
/// the first snapshot computed after the resume must still be a *delta*
/// against the restored evidence, not a full-compute fallback.
#[test]
fn incremental_kill_resume_stays_incremental() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let full_cfg = config((20, 30));
    let uninterrupted = run_study(w, &engine, &full_cfg);

    let dir = temp_dir("inc");
    let killed_cfg = config((20, 25));
    let s = store(&dir, &engine, &killed_cfg, CheckpointDriver::Incremental);
    run_study_incremental_checkpointed(w, &engine, &killed_cfg, s).expect("killed prefix run");

    let s = store(&dir, &engine, &full_cfg, CheckpointDriver::Incremental);
    let resumed = run_study_incremental_checkpointed(w, &engine, &full_cfg, s).expect("resumed");
    assert_eq!(
        render_study(&uninterrupted),
        render_study(&resumed.series),
        "resumed incremental study diverged from the uninterrupted run"
    );
    assert_eq!(resumed.reports.len(), resumed.series.snapshots.len());
    let resume_point = resumed
        .reports
        .iter()
        .find(|r| r.snapshot_idx == 26)
        .expect("snapshot 26 was processed live");
    assert!(
        !resume_point.full_compute,
        "resume fell back to a full compute instead of diffing restored evidence"
    );
    // Adopted snapshots keep their original reuse reports.
    assert!(resumed.reports[0].full_compute, "t=20 was the cold start");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The robustness layers compose: with record faults and transient scan
/// failures both injected, a killed-and-resumed checkpointed run still
/// renders byte-identical to an uninterrupted faulted run.
#[test]
fn kill_resume_is_byte_identical_under_faults_and_transients() {
    let w = world();
    let rate = fault_rate();
    let engine = || {
        ScanEngine::rapid7()
            .with_faults(Arc::new(FaultPlan::uniform_record_faults(11, rate)))
            .with_transients(Arc::new(TransientPolicy::new(11, 0.2)))
    };
    let full_cfg = config((22, 30));
    let uninterrupted = run_study(w, &engine(), &full_cfg);

    let dir = temp_dir("faulted");
    let killed_cfg = config((22, 26));
    let e = engine();
    let s = store(&dir, &e, &killed_cfg, CheckpointDriver::Sequential);
    run_study_checkpointed(w, &e, &killed_cfg, &s).expect("killed prefix run");

    let e = engine();
    let s = store(&dir, &e, &full_cfg, CheckpointDriver::Sequential);
    let resumed = run_study_checkpointed(w, &e, &full_cfg, &s).expect("resumed run");
    assert_eq!(
        render_study(&uninterrupted),
        render_study(&resumed),
        "faulted resume diverged (fault rate {rate}, transient rate 0.2)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sequential artifacts must not be adopted by the incremental driver (or
/// vice versa): the driver kind is part of the config fingerprint, so the
/// attempt dies with a typed `ConfigMismatch` carrying remediation.
#[test]
fn mismatched_driver_checkpoints_are_rejected() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let cfg = config((28, 30));
    let dir = temp_dir("mismatch");
    let s = store(&dir, &engine, &cfg, CheckpointDriver::Sequential);
    run_study_checkpointed(w, &engine, &cfg, &s).expect("seed the dir");

    let s = store(&dir, &engine, &cfg, CheckpointDriver::Incremental);
    let err = run_study_incremental_checkpointed(w, &engine, &cfg, s)
        .expect_err("incremental driver adopted sequential artifacts");
    assert!(
        matches!(err, CheckpointError::ConfigMismatch { .. }),
        "wrong error: {err}"
    );
    assert!(
        err.to_string().contains("--no-resume"),
        "error lacks remediation: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted artifact is a typed, recoverable error: the resumed run
/// refuses with `Corrupt` (never a panic, never a silent wrong answer),
/// and after `wipe()` — the `--no-resume` path — the rerun succeeds and
/// still matches the uninterrupted output.
#[test]
fn corrupt_checkpoint_is_rejected_then_recoverable() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let cfg = config((27, 30));
    let uninterrupted = run_study(w, &engine, &cfg);

    let dir = temp_dir("corrupt");
    let s = store(&dir, &engine, &cfg, CheckpointDriver::Sequential);
    run_study_checkpointed(w, &engine, &cfg, &s).expect("seed the dir");

    // Flip a byte in the middle of the first artifact's payload.
    let victim = dir.join("snap_0027.ckpt");
    let mut bytes = std::fs::read(&victim).expect("artifact exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&victim, &bytes).unwrap();

    let err =
        run_study_checkpointed(w, &engine, &cfg, &s).expect_err("resumed over a corrupt artifact");
    assert!(
        matches!(err, CheckpointError::Corrupt { .. }),
        "wrong error: {err}"
    );
    assert!(
        err.to_string()
            .ends_with("delete the checkpoint dir or pass --no-resume"),
        "error lacks remediation: {err}"
    );

    s.wipe().expect("wipe");
    let rerun = run_study_checkpointed(w, &engine, &cfg, &s).expect("rerun after wipe");
    assert_eq!(render_study(&uninterrupted), render_study(&rerun));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sharded checkpointed run killed *mid-snapshot* — segments spilled but
/// the snapshot artifact never written: the resumed run renders
/// byte-identical to an uninterrupted in-memory study, reuses the
/// orphaned segments instead of rescanning, and a damaged segment is
/// rebuilt in isolation.
#[test]
fn sharded_kill_resume_reuses_spilled_segments() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let full_range = (20, 27);
    let uninterrupted = run_study(w, &engine, &config(full_range));

    let ckpt_dir = temp_dir("shard-seq");
    let spill_dir = temp_dir("shard-seq-spill");
    let sharded = |range: (usize, usize)| StudyConfig {
        sharding: Some(ShardingConfig::new(400, spill_dir.clone())),
        ..config(range)
    };

    // "Kill mid-snapshot 24": run the 20..=24 prefix to completion, then
    // delete the t=24 artifact. Its segments stay spilled on disk — the
    // state a crash leaves behind between the spill and the save.
    let killed_cfg = sharded((20, 24));
    let s = store(
        &ckpt_dir,
        &engine,
        &killed_cfg,
        CheckpointDriver::Sequential,
    );
    run_study_checkpointed(w, &engine, &killed_cfg, &s).expect("killed prefix run");
    std::fs::remove_file(ckpt_dir.join("snap_0024.ckpt")).expect("drop mid-snapshot artifact");

    let resume_cfg = sharded(full_range);
    let s = store(
        &ckpt_dir,
        &engine,
        &resume_cfg,
        CheckpointDriver::Sequential,
    );
    let resumed = run_study_checkpointed(w, &engine, &resume_cfg, &s).expect("resumed run");
    assert_eq!(
        render_study(&uninterrupted),
        render_study(&resumed),
        "sharded resume diverged from the uninterrupted in-memory run"
    );
    let ledger = resume_cfg.sharding.as_ref().unwrap().ledger.clone();
    let rows = ledger.rows();
    // t=20..=23 were adopted from artifacts (their segments untouched);
    // t=24 reused every orphaned segment; t=25..=27 built fresh.
    assert!(ledger.segments_reused() > 0, "orphaned segments rescanned");
    assert!(
        rows.iter()
            .all(|r| r.snapshot_idx != 24 || (r.reused && r.segment_bytes > 0)),
        "t=24 segments were rebuilt instead of reused: {rows:?}"
    );
    assert!(
        rows.iter().any(|r| r.snapshot_idx == 25 && !r.reused),
        "post-kill snapshots should build fresh segments"
    );

    // Crash again at t=24, this time with one segment also lost: exactly
    // that segment rebuilds, the rest are admitted from disk, and the
    // rendering still matches.
    std::fs::remove_file(ckpt_dir.join("snap_0024.ckpt")).expect("drop artifact again");
    let victim = spill_dir.join("t0024").join("shard_0001.seg");
    std::fs::remove_file(&victim).expect("lose one segment");
    let rerun_cfg = sharded(full_range);
    let s = store(&ckpt_dir, &engine, &rerun_cfg, CheckpointDriver::Sequential);
    let rerun = run_study_checkpointed(w, &engine, &rerun_cfg, &s).expect("second resume");
    assert_eq!(render_study(&uninterrupted), render_study(&rerun));
    let ledger = rerun_cfg.sharding.as_ref().unwrap().ledger.clone();
    assert_eq!(ledger.segments_built(), 1, "only the lost segment rebuilds");
    assert!(ledger.segments_reused() > 0);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let _ = std::fs::remove_dir_all(&spill_dir);
}

/// The study fingerprint deliberately excludes the snapshot range, so a
/// checkpoint directory written under `start=20` is adopted by a
/// `start=25` resume. That resume is **not** a fresh `(25,30)` study:
/// adopted artifacts carry the §6.2 fold's cumulative certificate-history
/// IP set from t=20..24, so the non-TLS restoration sees more history
/// than a cold start. The resumed tail equals the full study's tail —
/// the longitudinal semantics — while the history-free variants match
/// the fresh run exactly.
#[test]
fn start_shift_resume_adopts_fold_history() {
    let w = world();
    let engine = ScanEngine::rapid7();
    // The range straddles the Netflix expired-certificate window, so the
    // pre-shift snapshots contribute history the shifted tail consults.
    let full_cfg = config((14, 22));
    let dir = temp_dir("shift");
    let s = store(&dir, &engine, &full_cfg, CheckpointDriver::Sequential);
    let full = run_study_checkpointed(w, &engine, &full_cfg, &s).expect("seed the dir");

    let tail_cfg = config((18, 22));
    // Same fingerprint despite the shifted range — documented behavior.
    assert_eq!(
        study_fingerprint(w, &engine, &full_cfg, CheckpointDriver::Sequential),
        study_fingerprint(w, &engine, &tail_cfg, CheckpointDriver::Sequential),
    );
    let s = store(&dir, &engine, &tail_cfg, CheckpointDriver::Sequential);
    let resumed = run_study_checkpointed(w, &engine, &tail_cfg, &s).expect("shifted resume");
    let fresh = run_study(w, &engine, &tail_cfg);

    // Per-snapshot processing is position-independent: identical rows.
    assert_eq!(resumed.snapshots.len(), fresh.snapshots.len());
    for (r, f) in resumed.snapshots.iter().zip(&fresh.snapshots) {
        assert_eq!(r.snapshot_idx, f.snapshot_idx);
        assert_eq!(r.total_ips_with_certs, f.total_ips_with_certs);
        assert_eq!(r.http_only_ips, f.http_only_ips);
    }
    // History-free fold variants match the fresh run.
    assert_eq!(resumed.netflix.initial, fresh.netflix.initial);
    assert_eq!(resumed.netflix.with_expired, fresh.netflix.with_expired);
    // The history-dependent variant equals the full study's tail…
    assert_eq!(
        resumed.netflix.with_non_tls,
        full.netflix.with_non_tls[full.netflix.with_non_tls.len() - resumed.snapshots.len()..],
        "shifted resume diverged from the full study's tail"
    );
    // …and dominates the cold start pointwise: extra history can only
    // restore more non-TLS ASes, never fewer.
    for (t, (r, f)) in resumed
        .netflix
        .with_non_tls
        .iter()
        .zip(&fresh.netflix.with_non_tls)
        .enumerate()
    {
        assert!(r >= f, "snapshot {t}: resumed {r} < fresh {f}");
    }
    assert_ne!(
        resumed.netflix.with_non_tls, fresh.netflix.with_non_tls,
        "expected the adopted t=14..17 history to restore extra ASes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
