//! Crash-resumable studies: a run killed mid-study and relaunched over the
//! same checkpoint directory must render byte-identical output to an
//! uninterrupted run — for the sequential and the incremental driver,
//! clean and under injected faults/transients alike — and checkpoint
//! corruption or configuration drift must surface as typed errors with
//! remediation, never as silent wrong answers.
//!
//! `OFFNET_FAULT_RATE` (shared with `tests/incremental.rs` and the CI
//! kill/resume job) sets the corruption rate for the faulted comparison.

use hgsim::{HgWorld, ScenarioConfig};
use offnet_bench::render_study;
use offnet_core::{
    run_study, run_study_checkpointed, run_study_incremental_checkpointed, study_fingerprint,
    CheckpointDriver, CheckpointError, CheckpointStore, StudyConfig,
};
use scanner::{FaultPlan, ScanEngine, TransientPolicy};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

fn world() -> &'static HgWorld {
    static W: OnceLock<HgWorld> = OnceLock::new();
    W.get_or_init(|| HgWorld::generate(ScenarioConfig::small()))
}

fn fault_rate() -> f64 {
    std::env::var("OFFNET_FAULT_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.1)
}

/// A process-unique checkpoint directory per test.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("offnet-ckpt-{tag}-{}", std::process::id()));
    // Stale artifacts from a previous crashed test run must not leak in.
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(range: (usize, usize)) -> StudyConfig {
    StudyConfig {
        snapshots: range,
        ..Default::default()
    }
}

fn store(
    dir: &PathBuf,
    engine: &ScanEngine,
    config: &StudyConfig,
    driver: CheckpointDriver,
) -> CheckpointStore {
    let fp = study_fingerprint(world(), engine, config, driver);
    CheckpointStore::open(dir, fp).expect("open store")
}

/// Sequential driver, killed after snapshot 25 and relaunched: the resumed
/// study renders byte-identical to an uninterrupted run, and the directory
/// ends up with one artifact per snapshot in the range.
#[test]
fn sequential_kill_resume_is_byte_identical() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let full_cfg = config((20, 30));
    let uninterrupted = run_study(w, &engine, &full_cfg);

    let dir = temp_dir("seq");
    // "Kill" after snapshot 25: run the prefix range to completion. The
    // fingerprint excludes the snapshot range, so the resumed (longer)
    // run adopts these artifacts.
    let killed_cfg = config((20, 25));
    let s = store(&dir, &engine, &killed_cfg, CheckpointDriver::Sequential);
    run_study_checkpointed(w, &engine, &killed_cfg, &s).expect("killed prefix run");

    let s = store(&dir, &engine, &full_cfg, CheckpointDriver::Sequential);
    let resumed = run_study_checkpointed(w, &engine, &full_cfg, &s).expect("resumed run");
    assert_eq!(
        render_study(&uninterrupted),
        render_study(&resumed),
        "resumed sequential study diverged from the uninterrupted run"
    );
    let artifacts = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "ckpt"))
        .count();
    assert_eq!(artifacts, 11, "one artifact per snapshot in 20..=30");

    // Re-running over the complete directory adopts everything and still
    // renders identically — resume is idempotent.
    let s = store(&dir, &engine, &full_cfg, CheckpointDriver::Sequential);
    let again = run_study_checkpointed(w, &engine, &full_cfg, &s).expect("idempotent run");
    assert_eq!(render_study(&uninterrupted), render_study(&again));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Incremental driver, killed and relaunched: byte-identical output, and
/// the first snapshot computed after the resume must still be a *delta*
/// against the restored evidence, not a full-compute fallback.
#[test]
fn incremental_kill_resume_stays_incremental() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let full_cfg = config((20, 30));
    let uninterrupted = run_study(w, &engine, &full_cfg);

    let dir = temp_dir("inc");
    let killed_cfg = config((20, 25));
    let s = store(&dir, &engine, &killed_cfg, CheckpointDriver::Incremental);
    run_study_incremental_checkpointed(w, &engine, &killed_cfg, s).expect("killed prefix run");

    let s = store(&dir, &engine, &full_cfg, CheckpointDriver::Incremental);
    let resumed = run_study_incremental_checkpointed(w, &engine, &full_cfg, s).expect("resumed");
    assert_eq!(
        render_study(&uninterrupted),
        render_study(&resumed.series),
        "resumed incremental study diverged from the uninterrupted run"
    );
    assert_eq!(resumed.reports.len(), resumed.series.snapshots.len());
    let resume_point = resumed
        .reports
        .iter()
        .find(|r| r.snapshot_idx == 26)
        .expect("snapshot 26 was processed live");
    assert!(
        !resume_point.full_compute,
        "resume fell back to a full compute instead of diffing restored evidence"
    );
    // Adopted snapshots keep their original reuse reports.
    assert!(resumed.reports[0].full_compute, "t=20 was the cold start");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The robustness layers compose: with record faults and transient scan
/// failures both injected, a killed-and-resumed checkpointed run still
/// renders byte-identical to an uninterrupted faulted run.
#[test]
fn kill_resume_is_byte_identical_under_faults_and_transients() {
    let w = world();
    let rate = fault_rate();
    let engine = || {
        ScanEngine::rapid7()
            .with_faults(Arc::new(FaultPlan::uniform_record_faults(11, rate)))
            .with_transients(Arc::new(TransientPolicy::new(11, 0.2)))
    };
    let full_cfg = config((22, 30));
    let uninterrupted = run_study(w, &engine(), &full_cfg);

    let dir = temp_dir("faulted");
    let killed_cfg = config((22, 26));
    let e = engine();
    let s = store(&dir, &e, &killed_cfg, CheckpointDriver::Sequential);
    run_study_checkpointed(w, &e, &killed_cfg, &s).expect("killed prefix run");

    let e = engine();
    let s = store(&dir, &e, &full_cfg, CheckpointDriver::Sequential);
    let resumed = run_study_checkpointed(w, &e, &full_cfg, &s).expect("resumed run");
    assert_eq!(
        render_study(&uninterrupted),
        render_study(&resumed),
        "faulted resume diverged (fault rate {rate}, transient rate 0.2)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sequential artifacts must not be adopted by the incremental driver (or
/// vice versa): the driver kind is part of the config fingerprint, so the
/// attempt dies with a typed `ConfigMismatch` carrying remediation.
#[test]
fn mismatched_driver_checkpoints_are_rejected() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let cfg = config((28, 30));
    let dir = temp_dir("mismatch");
    let s = store(&dir, &engine, &cfg, CheckpointDriver::Sequential);
    run_study_checkpointed(w, &engine, &cfg, &s).expect("seed the dir");

    let s = store(&dir, &engine, &cfg, CheckpointDriver::Incremental);
    let err = run_study_incremental_checkpointed(w, &engine, &cfg, s)
        .expect_err("incremental driver adopted sequential artifacts");
    assert!(
        matches!(err, CheckpointError::ConfigMismatch { .. }),
        "wrong error: {err}"
    );
    assert!(
        err.to_string().contains("--no-resume"),
        "error lacks remediation: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted artifact is a typed, recoverable error: the resumed run
/// refuses with `Corrupt` (never a panic, never a silent wrong answer),
/// and after `wipe()` — the `--no-resume` path — the rerun succeeds and
/// still matches the uninterrupted output.
#[test]
fn corrupt_checkpoint_is_rejected_then_recoverable() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let cfg = config((27, 30));
    let uninterrupted = run_study(w, &engine, &cfg);

    let dir = temp_dir("corrupt");
    let s = store(&dir, &engine, &cfg, CheckpointDriver::Sequential);
    run_study_checkpointed(w, &engine, &cfg, &s).expect("seed the dir");

    // Flip a byte in the middle of the first artifact's payload.
    let victim = dir.join("snap_0027.ckpt");
    let mut bytes = std::fs::read(&victim).expect("artifact exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&victim, &bytes).unwrap();

    let err =
        run_study_checkpointed(w, &engine, &cfg, &s).expect_err("resumed over a corrupt artifact");
    assert!(
        matches!(err, CheckpointError::Corrupt { .. }),
        "wrong error: {err}"
    );
    assert!(
        err.to_string()
            .ends_with("delete the checkpoint dir or pass --no-resume"),
        "error lacks remediation: {err}"
    );

    s.wipe().expect("wipe");
    let rerun = run_study_checkpointed(w, &engine, &cfg, &s).expect("rerun after wipe");
    assert_eq!(render_study(&uninterrupted), render_study(&rerun));
    let _ = std::fs::remove_dir_all(&dir);
}
