//! §8 "hide-and-seek": each countermeasure a Hypergiant could deploy
//! degrades the methodology exactly the way the paper predicts.

use hgsim::{Countermeasure, Hg, HgWorld, ScenarioConfig};
use offnet_core::study::learn_reference_fingerprints;
use offnet_core::{process_snapshot, PipelineContext};
use scanner::{observe_snapshot, ScanEngine};

fn footprints(cm: Option<Countermeasure>) -> (usize, usize) {
    let mut config = ScenarioConfig::small();
    if let Some(cm) = cm {
        config = config.with_countermeasure(Hg::Google, cm);
    }
    let world = HgWorld::generate(config);
    let engine = ScanEngine::rapid7();
    let fps = learn_reference_fingerprints(&world, &engine, 28);
    let ctx = PipelineContext::new(world.pki().root_store().clone(), world.org_db(), fps);
    let obs = observe_snapshot(&world, &engine, 30).unwrap();
    let result = process_snapshot(&obs, &ctx);
    let google = &result.per_hg[&Hg::Google];
    (google.candidate_ases.len(), google.confirmed_ases.len())
}

#[test]
fn baseline_visibility() {
    let (candidates, confirmed) = footprints(None);
    assert!(candidates > 100, "baseline candidates {candidates}");
    assert!(confirmed > 100, "baseline confirmed {confirmed}");
}

#[test]
fn null_default_cert_hides_offnets() {
    // §8 approach 1: "the default certificate should not disclose
    // information ... these changes would make existing datasets less
    // suitable to our methodology".
    let (candidates, confirmed) = footprints(Some(Countermeasure::NullDefaultCert));
    assert!(candidates < 5, "null-default left {candidates} candidates");
    assert!(confirmed < 5);
}

#[test]
fn stripping_organization_blinds_fingerprinting() {
    // §8 approach 3: without the Organization entry, §4.2 cannot identify
    // the HG's certificates at all.
    let (candidates, confirmed) = footprints(Some(Countermeasure::StripOrganization));
    assert_eq!(candidates, 0, "org-stripped certs must not match");
    assert_eq!(confirmed, 0);
}

#[test]
fn unique_domains_defeat_san_subset_rule() {
    // §8 approach 3b: per-deployment domains are never served on-net, so
    // the §4.3 subset rule (correctly) rejects every off-net certificate.
    let (candidates, confirmed) = footprints(Some(Countermeasure::UniqueDomains));
    assert!(candidates < 5, "unique-domain certs left {candidates}");
    assert!(confirmed < 5);
}

#[test]
fn anonymized_headers_blind_confirmation_only() {
    // §8 approach 4: headers are stripped, so §4.5 confirms nothing — but
    // the certificate footprint remains fully visible.
    let (candidates, confirmed) = footprints(Some(Countermeasure::AnonymizeHeaders));
    assert!(candidates > 100, "certificates still reveal: {candidates}");
    assert!(
        confirmed < candidates / 10,
        "header anonymization should break confirmation: {confirmed} of {candidates}"
    );
}
