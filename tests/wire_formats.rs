//! Cross-crate wire-format integration: certificates built by `hgsim`
//! survive TLS framing, scanning, re-parsing, and re-encoding byte-for-byte.

use hgsim::{Attribution, Hg, HgWorld, ScenarioConfig};
use std::sync::OnceLock;
use tlssim::{parse_client_hello, ClientHello, TlsClient, TlsEndpoint};
use x509::Certificate;

fn world() -> &'static HgWorld {
    static W: OnceLock<HgWorld> = OnceLock::new();
    W.get_or_init(|| HgWorld::generate(ScenarioConfig::small()))
}

#[test]
fn scanned_chains_reparse_to_identical_der() {
    let eps = world().endpoints(30);
    let client = TlsClient::new([1u8; 32]);
    let mut checked = 0;
    for ep in eps.endpoints().iter().take(1000) {
        let endpoint = TlsEndpoint::new(ep.tls.clone());
        let Ok(chain) = client.fetch_chain(&endpoint, None) else {
            continue;
        };
        for der in &chain {
            let cert = Certificate::parse(der).expect("scanned cert parses");
            // The parser retains the exact wire bytes.
            assert_eq!(cert.der(), der.as_ref());
            // Re-assembling the parsed content reproduces the encoding.
            let rebuilt = Certificate::assemble(cert.tbs().clone(), *cert.signature());
            assert_eq!(rebuilt.der(), der.as_ref(), "re-encode mismatch");
            checked += 1;
        }
    }
    assert!(checked > 500, "only {checked} certificates checked");
}

#[test]
fn sni_routing_through_real_frames() {
    let eps = world().endpoints(30);
    // Find an Akamai multi-CDN edge (it carries SNI chains).
    let edge = eps
        .endpoints()
        .iter()
        .find(|e| e.attribution == Attribution::OffNet(Hg::Akamai) && !e.tls.sni_chains.is_empty())
        .expect("akamai multi-CDN edge exists");
    let endpoint = TlsEndpoint::new(edge.tls.clone());
    let client = TlsClient::new([2u8; 32]);
    let default = client.fetch_chain(&endpoint, None).unwrap();
    let leaf = Certificate::parse(&default[0]).unwrap();
    assert_eq!(
        leaf.subject().organization(),
        Some("Akamai Technologies"),
        "default certificate is Akamai's"
    );
    let apple = client
        .fetch_chain(&endpoint, Some("www.apple.com"))
        .unwrap();
    let leaf = Certificate::parse(&apple[0]).unwrap();
    assert_eq!(leaf.subject().organization(), Some("Apple Inc."));
}

#[test]
fn client_hello_framing_carries_sni() {
    let hello = ClientHello::new([7u8; 32], Some("edge.example.net"));
    let wire = hello.encode();
    // A middlebox (or our server) can recover the SNI from raw bytes.
    let parsed = parse_client_hello(&wire).unwrap();
    assert_eq!(parsed.sni.as_deref(), Some("edge.example.net"));
    assert_eq!(parsed.random, [7u8; 32]);
}

#[test]
fn null_default_certificates_hide_google_onnets() {
    // §8: post-2019 Google on-nets serve certificates only via SNI.
    let eps = world().endpoints(30);
    let client = TlsClient::new([3u8; 32]);
    let mut hidden = 0;
    let mut visible = 0;
    for ep in eps.endpoints() {
        if ep.attribution != Attribution::OnNet(Hg::Google) {
            continue;
        }
        let endpoint = TlsEndpoint::new(ep.tls.clone());
        let default = client.fetch_chain(&endpoint, None).unwrap();
        if default.is_empty() {
            hidden += 1;
            // ...but the certificate is still there behind SNI.
            let sni = client
                .fetch_chain(&endpoint, Some("www.google.com"))
                .unwrap();
            assert!(!sni.is_empty(), "SNI request must be answered");
        } else {
            visible += 1;
        }
    }
    assert!(hidden > 0, "no SNI-only on-nets at 2021-04");
    assert!(visible > 0, "some on-nets still serve default certs");
}
