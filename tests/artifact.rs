//! Study-artifact equivalence: a study frozen to disk and loaded back
//! must render byte-identical output to the live series, whichever of
//! the four drivers produced it — sequential, snapshot-parallel,
//! checkpointed, or the incremental delta engine — clean and under
//! injected faults alike. The incremental engine must also append to an
//! existing on-disk artifact and land exactly where an uninterrupted
//! run does.
//!
//! `OFFNET_FAULT_RATE` (used by the CI artifact-equivalence job) sets
//! the injected corruption rate for the faulted comparison (default 0.1).

use hgsim::{HgWorld, ScenarioConfig, ALL_HGS};
use offnet_bench::render_study;
use offnet_core::{
    run_study, run_study_checkpointed, run_study_incremental, run_study_parallel, ArtifactError,
    CheckpointDriver, CheckpointStore, DeltaStudyEngine, StudyArtifact, StudyConfig,
};
use offnet_query::FrozenStudy;
use scanner::{FaultPlan, ScanEngine};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

fn world() -> &'static HgWorld {
    static W: OnceLock<HgWorld> = OnceLock::new();
    W.get_or_init(|| HgWorld::generate(ScenarioConfig::small()))
}

fn fault_rate() -> f64 {
    std::env::var("OFFNET_FAULT_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.1)
}

/// A unique scratch path per call, so parallel tests never collide.
fn temp_dir() -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "offnet-artifact-test-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Render the artifact at `path` after a disk round trip.
fn render_loaded(path: &std::path::Path) -> String {
    render_study(
        &StudyArtifact::load(path)
            .expect("load artifact")
            .to_series(),
    )
}

#[test]
fn every_driver_freezes_a_render_identical_artifact() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let dir = temp_dir();
    let config = |name: &str| StudyConfig {
        artifact_out: Some(dir.join(format!("{name}.offna"))),
        ..Default::default()
    };

    let sequential = render_study(&run_study(w, &engine, &config("sequential")));
    let parallel = render_study(&run_study_parallel(w, &engine, &config("parallel"), 4));
    let incremental =
        render_study(&run_study_incremental(w, &engine, &config("incremental")).series);
    let ckpt_config = config("checkpointed");
    let store = CheckpointStore::open(
        dir.join("ckpts"),
        offnet_core::study_fingerprint(w, &engine, &ckpt_config, CheckpointDriver::Sequential),
    )
    .expect("open store");
    let checkpointed =
        render_study(&run_study_checkpointed(w, &engine, &ckpt_config, &store).expect("ckpt run"));

    for (name, direct) in [
        ("sequential", &sequential),
        ("parallel", &parallel),
        ("incremental", &incremental),
        ("checkpointed", &checkpointed),
    ] {
        assert_eq!(
            *direct,
            render_loaded(&dir.join(format!("{name}.offna"))),
            "{name}: loaded artifact renders differently from the live study"
        );
        assert_eq!(
            *direct, sequential,
            "{name}: drivers disagree before the artifact is even involved"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn faulted_artifacts_round_trip_across_drivers() {
    let w = world();
    let rate = fault_rate();
    let dir = temp_dir();
    // Same plan seed on both sides: fault injection is deterministic per
    // (seed, snapshot), so both drivers see identical corrupted scans.
    let engine =
        || ScanEngine::rapid7().with_faults(Arc::new(FaultPlan::uniform_record_faults(11, rate)));
    let config = |name: &str| StudyConfig {
        snapshots: (14, 24),
        artifact_out: Some(dir.join(format!("{name}.offna"))),
        ..Default::default()
    };

    let plan = Arc::new(FaultPlan::uniform_record_faults(11, rate));
    let full = run_study(
        w,
        &ScanEngine::rapid7().with_faults(plan.clone()),
        &config("full"),
    );
    assert!(
        !plan.injected_total().is_empty(),
        "plan injected nothing at rate {rate}; the faulted comparison is vacuous"
    );
    let inc = run_study_incremental(w, &engine(), &config("incremental"));

    let full_render = render_study(&full);
    assert_eq!(full_render, render_study(&inc.series));
    assert_eq!(full_render, render_loaded(&dir.join("full.offna")));
    assert_eq!(full_render, render_loaded(&dir.join("incremental.offna")));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The incremental engine adopts an on-disk artifact prefix and extends
/// it in place: a run killed after a few appends is continued by a fresh
/// engine on the same path, and both the finished series and the
/// re-loaded artifact land byte-identical to an uninterrupted run.
#[test]
fn incremental_append_to_existing_artifact_round_trips() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let config = StudyConfig {
        snapshots: (14, 24),
        ..Default::default()
    };
    let dir = temp_dir();
    let path = dir.join("grown.offna");

    // First engine: append a prefix, then drop without finish() — the
    // artifact on disk holds whatever was persisted per-append.
    let mut first = DeltaStudyEngine::new(w, engine.clone(), &config)
        .with_artifact(&path)
        .expect("fresh artifact");
    for t in 14..=18 {
        first.append_snapshot(t);
    }
    drop(first);
    let prefix_rows = StudyArtifact::load(&path).expect("prefix").snapshots.len();
    assert!(prefix_rows > 0, "prefix persisted nothing");

    // Second engine: adopt the prefix and run the full range.
    let mut second = DeltaStudyEngine::new(w, engine.clone(), &config)
        .with_artifact(&path)
        .expect("adopt prefix");
    for t in 14..=24 {
        second.append_snapshot(t);
    }
    let grown = second.finish();

    let reference = run_study(w, &engine, &config);
    assert_eq!(
        render_study(&reference),
        render_study(&grown.series),
        "grown-from-artifact series diverged from an uninterrupted run"
    );
    assert_eq!(render_study(&reference), render_loaded(&path));
    // Adoption must be visible in the reuse reports: the prefix engine's
    // genuine reports survive the disk round trip, and the first live
    // append is a full compute (the artifact stores results, not delta
    // evidence), after which deltas resume.
    assert_eq!(grown.reports.len(), grown.series.snapshots.len());
    assert!(grown.reports[0].full_compute, "t0 must be full");
    assert!(
        grown.reports[1..prefix_rows]
            .iter()
            .all(|r| !r.full_compute),
        "adopted prefix lost its genuine delta reports"
    );
    assert!(
        grown.reports[prefix_rows].full_compute,
        "first append after adoption must recompute in full"
    );
    assert!(
        grown.reports[prefix_rows + 1..]
            .iter()
            .all(|r| !r.full_compute),
        "deltas must resume after the post-adoption full compute"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn damaged_artifacts_fail_typed_not_loud() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let dir = temp_dir();
    let path = dir.join("victim.offna");
    let config = StudyConfig {
        snapshots: (24, 26),
        artifact_out: Some(path.clone()),
        ..Default::default()
    };
    run_study(w, &engine, &config);

    let pristine = std::fs::read(&path).expect("artifact bytes");
    // Flip one payload byte: checksum mismatch, typed and remediated.
    let mut flipped = pristine.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0xff;
    std::fs::write(&path, &flipped).expect("write flipped");
    let err = StudyArtifact::load(&path).expect_err("corrupt artifact must not load");
    assert!(matches!(err, ArtifactError::Corrupt { .. }), "{err}");
    assert!(
        err.to_string().contains("delete the artifact file"),
        "error must carry its remediation: {err}"
    );
    // Truncation is equally typed.
    std::fs::write(&path, &pristine[..pristine.len() / 3]).expect("write truncated");
    assert!(
        StudyArtifact::load(&path).is_err(),
        "truncated artifact loaded"
    );
    // And the incremental engine surfaces the same typed error instead of
    // adopting garbage.
    std::fs::write(&path, &flipped).expect("write flipped again");
    let adopt = DeltaStudyEngine::new(w, engine, &config).with_artifact(&path);
    assert!(adopt.is_err(), "engine adopted a corrupt artifact");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The query layer's frozen tables must agree with the series they were
/// frozen from: growth curves equal the per-snapshot confirmed counts,
/// and point lookups match set membership.
#[test]
fn frozen_study_agrees_with_live_series() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let dir = temp_dir();
    let path = dir.join("query.offna");
    let config = StudyConfig {
        artifact_out: Some(path.clone()),
        ..Default::default()
    };
    let series = run_study(w, &engine, &config);
    let frozen = FrozenStudy::load(&path).expect("load frozen");

    assert_eq!(frozen.n_rows(), series.snapshots.len());
    for hg in ALL_HGS {
        assert_eq!(
            frozen.growth_curve(hg),
            series.confirmed_series(hg),
            "{hg}: frozen growth curve diverged"
        );
    }
    for (row, snap) in series.snapshots.iter().enumerate() {
        assert_eq!(frozen.snapshot_idx(row), snap.snapshot_idx);
        for hg in ALL_HGS {
            let live = &snap.per_hg[&hg].confirmed_ases;
            let frozen_ases = frozen.ases_hosting(hg, row);
            assert_eq!(frozen_ases.len(), live.len(), "{hg} row {row}");
            for asn in frozen_ases {
                assert!(frozen.hosts(hg, row, *asn), "{hg} row {row} as {asn}");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
