//! Ablation integration tests: disabling each methodology filter must
//! reproduce the failure mode the paper designed it against.

use hgsim::{Hg, HgWorld, ScenarioConfig};
use offnet_core::candidates::CandidateOptions;
use offnet_core::study::learn_reference_fingerprints;
use offnet_core::{process_snapshot, PipelineContext, SnapshotResult};
use scanner::{observe_snapshot, ScanEngine, SnapshotObservations};
use std::sync::OnceLock;

fn world() -> &'static HgWorld {
    static W: OnceLock<HgWorld> = OnceLock::new();
    W.get_or_init(|| HgWorld::generate(ScenarioConfig::small()))
}

fn obs() -> &'static SnapshotObservations {
    static O: OnceLock<SnapshotObservations> = OnceLock::new();
    O.get_or_init(|| observe_snapshot(world(), &ScanEngine::rapid7(), 30).unwrap())
}

fn run_with(options: CandidateOptions) -> SnapshotResult {
    static FPS: OnceLock<offnet_core::HeaderFingerprints> = OnceLock::new();
    let fps = FPS
        .get_or_init(|| learn_reference_fingerprints(world(), &ScanEngine::rapid7(), 28))
        .clone();
    let mut ctx = PipelineContext::new(world().pki().root_store().clone(), world().org_db(), fps);
    ctx.candidate_options = options;
    process_snapshot(obs(), &ctx)
}

#[test]
fn san_subset_rule_guards_against_org_spoofing() {
    let strict = run_with(CandidateOptions::default());
    let naive = run_with(CandidateOptions {
        require_san_subset: false,
        cloudflare_filter: true,
    });
    // Without the rule, joint-venture certificates and keyword-bait orgs
    // leak into the footprints.
    let s = strict.per_hg[&Hg::Google].candidate_ases.len();
    let n = naive.per_hg[&Hg::Google].candidate_ases.len();
    assert!(n > s, "naive {n} !> strict {s}");
    // And the extra candidate ASes are wrong: they are not true hosts.
    let truth = world().true_offnet_ases(Hg::Google, 30);
    let extra_wrong = naive.per_hg[&Hg::Google]
        .candidate_ases
        .difference(&strict.per_hg[&Hg::Google].candidate_ases)
        .filter(|a| !truth.contains(a))
        .count();
    assert!(extra_wrong > 0, "the extra candidates should be spurious");
}

#[test]
fn cloudflare_filter_prunes_universal_ssl() {
    let strict = run_with(CandidateOptions::default());
    let unfiltered = run_with(CandidateOptions {
        require_san_subset: true,
        cloudflare_filter: false,
    });
    let s = strict.per_hg[&Hg::Cloudflare].candidate_ases.len();
    let u = unfiltered.per_hg[&Hg::Cloudflare].candidate_ases.len();
    // The filter removes the free universal-SSL customers but cannot catch
    // paid dedicated certificates — Cloudflare's residual false positive.
    assert!(u > s * 2, "filter too weak: {u} vs {s}");
    assert!(s > 0, "paid-cert false positives should survive");
    // No true Cloudflare off-nets exist at all.
    assert!(world().true_offnet_ases(Hg::Cloudflare, 30).is_empty());
}

#[test]
fn header_confirmation_kills_cert_only_footprints() {
    let result = run_with(CandidateOptions::default());
    for hg in [Hg::Apple, Hg::Twitter] {
        let r = &result.per_hg[&hg];
        assert!(
            r.candidate_ases.len() >= 3,
            "{hg}: candidates {}",
            r.candidate_ases.len()
        );
        assert!(
            r.confirmed_ases.len() * 3 <= r.candidate_ases.len(),
            "{hg}: headers failed to prune {} -> {}",
            r.candidate_ases.len(),
            r.confirmed_ases.len()
        );
    }
}

#[test]
fn ip2as_stability_filter_blocks_hijack_noise() {
    let topo = world().topology();
    let noisy = netsim::BgpNoiseConfig {
        hijack_rate: 0.3,
        moas_rate: 0.0,
        flap_rate: 0.0,
    };
    let rib = netsim::MonthlyRib::build(topo, 30, &noisy, 99);
    let filtered = netsim::IpToAsMap::build(&rib);
    let unfiltered = netsim::IpToAsMap::build_with_threshold(&rib, 0.0);
    // Count lookups that would return a wrong (hijacker) origin.
    let mut wrong_f = 0usize;
    let mut wrong_u = 0usize;
    for a in topo.ases().iter().take(2000) {
        let ip = a.prefixes[0].addr(1);
        if filtered.lookup(ip).iter().any(|o| *o != a.id) {
            wrong_f += 1;
        }
        if unfiltered.lookup(ip).iter().any(|o| *o != a.id) {
            wrong_u += 1;
        }
    }
    assert!(
        wrong_u > wrong_f * 5,
        "filter ineffective: {wrong_u} vs {wrong_f}"
    );
}
