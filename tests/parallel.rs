//! Parallel-pipeline equivalence: the scoped-thread fan-out and the
//! cross-snapshot validation cache must reproduce the sequential results
//! exactly — same per-HG sets, same ValidationStats (including the §6.2
//! Netflix expiry-exemption path), same Netflix restoration series.

use hgsim::{Hg, HgWorld, ScenarioConfig, ALL_HGS};
use offnet_core::study::learn_reference_fingerprints;
use offnet_core::{
    process_snapshot, process_snapshots_parallel, run_study, run_study_parallel, PipelineContext,
    StudyConfig, ValidationCache,
};
use scanner::{observe_snapshot, ScanEngine};
use std::sync::{Arc, OnceLock};

fn world() -> &'static HgWorld {
    static W: OnceLock<HgWorld> = OnceLock::new();
    W.get_or_init(|| HgWorld::generate(ScenarioConfig::small()))
}

fn base_ctx() -> PipelineContext {
    let w = world();
    let fps = learn_reference_fingerprints(w, &ScanEngine::rapid7(), 28);
    PipelineContext::new(w.pki().root_store().clone(), w.org_db(), fps)
}

#[test]
fn parallel_snapshots_match_sequential() {
    let w = world();
    let engine = ScanEngine::rapid7();
    // Snapshot 18 sits inside the Netflix expired-certificate window, so
    // the expiry-exempted restoration path is exercised too.
    let obs: Vec<_> = [10usize, 18, 30]
        .iter()
        .map(|&t| observe_snapshot(w, &engine, t).expect("snapshot in corpus"))
        .collect();

    let seq_ctx = base_ctx();
    let par_ctx = seq_ctx
        .clone()
        .with_threads(4)
        .with_validation_cache(Arc::new(ValidationCache::new()));

    let seq: Vec<_> = obs.iter().map(|o| process_snapshot(o, &seq_ctx)).collect();
    let par = process_snapshots_parallel(&obs, &par_ctx);

    assert_eq!(seq.len(), par.len());
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(s.snapshot_idx, p.snapshot_idx, "results out of order");
        assert_eq!(s.validation, p.validation, "t={}", s.snapshot_idx);
        assert_eq!(s.http_only_ips, p.http_only_ips, "t={}", s.snapshot_idx);
        assert_eq!(s.total_ips_with_certs, p.total_ips_with_certs);
        assert_eq!(s.n_ases_with_certs, p.n_ases_with_certs);
        for hg in ALL_HGS {
            let (a, b) = (&s.per_hg[&hg], &p.per_hg[&hg]);
            let t = s.snapshot_idx;
            assert_eq!(a.candidate_ases, b.candidate_ases, "{hg} t={t}");
            assert_eq!(a.confirmed_ases, b.confirmed_ases, "{hg} t={t}");
            assert_eq!(a.confirmed_and_ases, b.confirmed_and_ases, "{hg} t={t}");
            assert_eq!(a.candidate_ips, b.candidate_ips, "{hg} t={t}");
            assert_eq!(a.confirmed_ips, b.confirmed_ips, "{hg} t={t}");
            assert_eq!(a.cert_ip_groups, b.cert_ip_groups, "{hg} t={t}");
            assert_eq!(a.onnet_ip_count, b.onnet_ip_count, "{hg} t={t}");
            assert_eq!(a.with_expired_ases, b.with_expired_ases, "{hg} t={t}");
            assert_eq!(a.with_expired_ips, b.with_expired_ips, "{hg} t={t}");
            assert_eq!(
                a.median_cert_lifetime_days, b.median_cert_lifetime_days,
                "{hg} t={t}"
            );
        }
    }
}

#[test]
fn cached_study_matches_sequential_study() {
    let w = world();
    let engine = ScanEngine::rapid7();
    // A window straddling the Netflix expired-certificate episode, so the
    // cumulative non-TLS restoration fold carries real state.
    let config = StudyConfig {
        snapshots: (14, 20),
        ..Default::default()
    };
    let seq = run_study(w, &engine, &config);
    let par = run_study_parallel(w, &engine, &config, 4);

    assert_eq!(seq.snapshots.len(), par.snapshots.len());
    for (s, p) in seq.snapshots.iter().zip(&par.snapshots) {
        assert_eq!(s.snapshot_idx, p.snapshot_idx);
        assert_eq!(s.validation, p.validation, "t={}", s.snapshot_idx);
        for hg in ALL_HGS {
            assert_eq!(
                s.per_hg[&hg].confirmed_ases, p.per_hg[&hg].confirmed_ases,
                "{hg} t={}",
                s.snapshot_idx
            );
        }
    }
    assert_eq!(seq.netflix.initial, par.netflix.initial);
    assert_eq!(seq.netflix.with_expired, par.netflix.with_expired);
    assert_eq!(seq.netflix.with_non_tls, par.netflix.with_non_tls);
    // The expired window must actually have fired, or this test proves
    // nothing about the exemption path.
    let widened = seq
        .netflix
        .with_expired
        .iter()
        .zip(&seq.netflix.initial)
        .any(|(e, i)| e > i);
    assert!(widened, "expired-restoration path never exercised");
}

#[test]
fn thread_count_does_not_change_results() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let obs = vec![observe_snapshot(w, &engine, 30).expect("snapshot in corpus")];
    let mut reference: Option<Vec<netsim::AsId>> = None;
    for threads in [1usize, 2, 7] {
        let ctx = base_ctx()
            .with_threads(threads)
            .with_validation_cache(Arc::new(ValidationCache::new()));
        let result = &process_snapshots_parallel(&obs, &ctx)[0];
        let google: Vec<netsim::AsId> = result.per_hg[&Hg::Google]
            .confirmed_ases
            .iter()
            .copied()
            .collect();
        match &reference {
            None => reference = Some(google),
            Some(r) => assert_eq!(r, &google, "threads={threads} diverged"),
        }
    }
}

#[test]
fn faulted_study_parallel_matches_sequential() {
    // Under injected corruption the parallel driver must still reproduce
    // the sequential results exactly — including the quarantine accounting.
    let w = world();
    let config = StudyConfig {
        snapshots: (26, 30),
        ..Default::default()
    };
    let mk_engine = || {
        let plan = Arc::new(scanner::FaultPlan::uniform_record_faults(13, 0.08));
        ScanEngine::rapid7().with_faults(plan)
    };
    let seq = run_study(w, &mk_engine(), &config);
    let par = run_study_parallel(w, &mk_engine(), &config, 4);
    assert_eq!(seq.snapshots.len(), par.snapshots.len());
    for (s, p) in seq.snapshots.iter().zip(&par.snapshots) {
        assert_eq!(s.snapshot_idx, p.snapshot_idx);
        assert_eq!(s.validation, p.validation, "t={}", s.snapshot_idx);
        assert_eq!(s.quality, p.quality, "t={}", s.snapshot_idx);
        for hg in ALL_HGS {
            assert_eq!(
                s.per_hg[&hg].confirmed_ases, p.per_hg[&hg].confirmed_ases,
                "{hg} t={}",
                s.snapshot_idx
            );
        }
    }
    assert_eq!(
        seq.aggregate_quality(),
        par.aggregate_quality(),
        "study-level quality reports diverged"
    );
}

#[test]
fn shared_cache_is_hit_across_snapshots() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let cache = Arc::new(ValidationCache::new());
    let ctx = base_ctx()
        .with_threads(2)
        .with_validation_cache(cache.clone());
    // Deferred skeleton capture: a chain's first sighting verifies
    // directly, its second promotes to a replayable skeleton, and only the
    // third onwards replays. Feed three adjacent months through one cache
    // sequentially so each stage of that ladder is visible.
    for t in [28usize, 29, 30] {
        let obs = observe_snapshot(w, &engine, t).expect("snapshot in corpus");
        let _ = process_snapshots_parallel(std::slice::from_ref(&obs), &ctx);
        let stats = cache.stats();
        match t {
            28 => {
                assert!(stats.first_sightings > 0, "cache never populated");
                assert_eq!(stats.promotions, 0, "nothing recurs within a month");
                assert_eq!(stats.hits, 0, "no skeleton exists to replay yet");
            }
            29 => assert!(
                stats.promotions > 0,
                "second sighting never promoted: {stats:?}"
            ),
            _ => {
                // Certificates rotate, so adjacent monthly snapshots only
                // partially overlap — but a meaningful fraction of chains
                // must persist long enough to replay on month three.
                let (hits, misses) = cache.hit_stats();
                assert!(
                    hits * 10 > misses,
                    "cross-snapshot reuse missing: {hits} hits vs {misses} misses"
                );
            }
        }
    }
}
