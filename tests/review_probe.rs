//! Review probe: checkpoint dir written under start=20, resumed with start=25.

use hgsim::{HgWorld, ScenarioConfig};
use offnet_bench::render_study;
use offnet_core::{
    run_study, run_study_checkpointed, study_fingerprint, CheckpointDriver, CheckpointStore,
    StudyConfig,
};
use scanner::ScanEngine;

#[test]
fn start_mismatch_adoption() {
    let w = HgWorld::generate(ScenarioConfig::small());
    let engine = ScanEngine::rapid7();
    let dir = std::env::temp_dir().join(format!("offnet-review-probe-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Run 1: full range (20,30) checkpointed.
    let cfg_a = StudyConfig {
        snapshots: (20, 30),
        ..Default::default()
    };
    let fp_a = study_fingerprint(&w, &engine, &cfg_a, CheckpointDriver::Sequential);
    let s = CheckpointStore::open(&dir, fp_a).unwrap();
    run_study_checkpointed(&w, &engine, &cfg_a, &s).unwrap();

    // Run 2: same dir, start moved to 25.
    let cfg_b = StudyConfig {
        snapshots: (25, 30),
        ..Default::default()
    };
    let fp_b = study_fingerprint(&w, &engine, &cfg_b, CheckpointDriver::Sequential);
    assert_eq!(fp_a, fp_b, "fingerprint excludes the range, as documented");
    let s = CheckpointStore::open(&dir, fp_b).unwrap();
    let resumed = run_study_checkpointed(&w, &engine, &cfg_b, &s).unwrap();
    let fresh = run_study(&w, &engine, &cfg_b);
    let same = render_study(&fresh) == render_study(&resumed);
    eprintln!("PROBE netflix fresh:   {:?}", fresh.netflix.with_non_tls);
    eprintln!("PROBE netflix resumed: {:?}", resumed.netflix.with_non_tls);
    eprintln!("PROBE byte-identical: {same}");
    let _ = std::fs::remove_dir_all(&dir);
}
