//! Incremental-study equivalence: the delta engine — which diffs each
//! snapshot's evidence against its predecessor and recomputes only dirty
//! HG×AS cells — must render byte-identical study output to the full
//! sequential driver, clean and under injected faults alike, and its
//! reuse counters must account for every cell and every chain exactly.
//!
//! `OFFNET_FAULT_RATE` (used by the CI incremental-equivalence job) sets
//! the injected corruption rate for the faulted comparison (default 0.1).

use hgsim::{HgWorld, ScenarioConfig, ALL_HGS};
use offnet_bench::render_study;
use offnet_core::{
    run_study, run_study_incremental, standard_validate_options, CorpusDelta, DeltaStudyEngine,
    SnapshotCorpus, SnapshotEvidence, StudyConfig,
};
use scanner::{observe_snapshot, FaultPlan, ScanEngine};
use std::sync::{Arc, OnceLock};

fn world() -> &'static HgWorld {
    static W: OnceLock<HgWorld> = OnceLock::new();
    W.get_or_init(|| HgWorld::generate(ScenarioConfig::small()))
}

fn fault_rate() -> f64 {
    std::env::var("OFFNET_FAULT_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.1)
}

#[test]
fn incremental_matches_full_rendered_output() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let config = StudyConfig::default();
    let full = run_study(w, &engine, &config);
    let inc = run_study_incremental(w, &engine, &config);
    assert_eq!(
        render_study(&full),
        render_study(&inc.series),
        "incremental study diverged from the full recompute"
    );
    // The equivalence must come from genuine reuse, not from the delta
    // engine quietly recomputing everything (or replaying everything).
    assert!(inc.reports[0].full_compute, "first snapshot must be full");
    assert!(
        inc.reports[1..].iter().all(|r| !r.full_compute),
        "no later snapshot may fall back to a full compute on a clean run"
    );
    assert!(
        inc.reports.iter().any(|r| r.hgs_replayed > 0),
        "delta engine never replayed a clean HG"
    );
    assert!(
        inc.reports.iter().any(|r| r.hgs_recomputed > 0),
        "delta engine never recomputed a dirty HG"
    );
    assert!(
        inc.reports.iter().any(|r| r.chains_replayed > 0),
        "validation cache never replayed a chain"
    );
}

#[test]
fn incremental_matches_full_under_faults() {
    let w = world();
    let rate = fault_rate();
    let config = StudyConfig {
        snapshots: (14, 24),
        ..Default::default()
    };
    // Same plan seed on both sides: fault injection is deterministic per
    // (seed, snapshot), so both drivers see identical corrupted scans.
    let run_engine = || {
        let plan = Arc::new(FaultPlan::uniform_record_faults(11, rate));
        (ScanEngine::rapid7().with_faults(plan.clone()), plan)
    };
    let (engine_a, plan_a) = run_engine();
    let full = run_study(w, &engine_a, &config);
    let (engine_b, _) = run_engine();
    let inc = run_study_incremental(w, &engine_b, &config);
    assert!(
        !plan_a.injected_total().is_empty(),
        "plan injected nothing at rate {rate}; the faulted comparison is vacuous"
    );
    assert_eq!(
        render_study(&full),
        render_study(&inc.series),
        "faulted incremental study diverged from the full recompute (rate {rate})"
    );
}

/// Every cell and every chain must be accounted for, in the exact style of
/// `tests/faults.rs`: per-snapshot identities over the reuse counters, and
/// a study-wide reconciliation against the validation cache's own ledger.
#[test]
fn reuse_accounting_is_exact() {
    let w = world();
    let config = StudyConfig::default();
    let mut driver = DeltaStudyEngine::new(w, ScanEngine::rapid7(), &config);
    for t in config.snapshots.0..=config.snapshots.1.min(w.n_snapshots() - 1) {
        driver.append_snapshot(t);
    }
    let (hits, misses) = driver.cache().hit_stats();
    let study = driver.finish();
    assert_eq!(study.reports.len(), study.series.snapshots.len());
    for (i, (report, snap)) in study
        .reports
        .iter()
        .zip(&study.series.snapshots)
        .enumerate()
    {
        let t = snap.snapshot_idx;
        assert_eq!(report.snapshot_idx, t, "report/series misalignment");
        assert_eq!(report.full_compute, i == 0, "clean run: only t0 is full");
        assert_eq!(
            report.hgs_replayed + report.hgs_recomputed,
            report.hgs_total,
            "HG split does not cover all HGs t={t}"
        );
        assert_eq!(report.hgs_total, ALL_HGS.len(), "t={t}");
        assert_eq!(
            report.chains_new + report.chains_rotated + report.chains_persisted(),
            report.chains_total,
            "chain churn split does not cover the snapshot t={t}"
        );
        if i > 0 {
            // Every chain of the previous snapshot must be classified:
            // vanished, rotated in place, or persisted unchanged.
            let prev = &study.reports[i - 1];
            assert_eq!(
                report.chains_vanished + report.chains_rotated + report.chains_persisted(),
                prev.chains_total,
                "previous snapshot's chains not fully classified t={t}"
            );
        }
    }
    // §4.1 ledger: per-snapshot replay/reverify splits must sum to the
    // cache's lifetime totals — no validation happened off the books.
    let replayed: u64 = study.reports.iter().map(|r| r.chains_replayed).sum();
    let revalidated: u64 = study.reports.iter().map(|r| r.chains_revalidated).sum();
    assert_eq!(replayed, hits, "replay ledger mismatch");
    assert_eq!(revalidated, misses, "reverification ledger mismatch");
    assert!(hits > 0, "cache never replayed; accounting is vacuous");
}

/// Diffing a snapshot against an independently rebuilt copy of itself is
/// clean: no dirty HGs, no touched rows, and applying the delta is the
/// identity.
#[test]
fn self_delta_of_rebuilt_corpus_is_all_clean() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let obs = observe_snapshot(w, &engine, 30).expect("snapshot in corpus");
    let roots = w.pki().root_store().clone();
    let build = || {
        let corpus = SnapshotCorpus::build(&obs, &roots, &standard_validate_options(), None);
        SnapshotEvidence::build(&corpus, obs.cert.chain_digests())
    };
    let a = build();
    let b = build();
    assert_eq!(a, b, "evidence is not a pure function of the observation");
    let delta = CorpusDelta::diff(&a, &b);
    assert!(delta.is_clean(), "self-delta marked rows dirty");
    assert!(delta.dirty_hgs().is_empty(), "self-delta marked HGs dirty");
    assert_eq!(
        delta.apply(&a),
        b,
        "applying a clean delta must be identity"
    );
}
