//! Transient-failure scan layer: the deterministic retry/backoff policy
//! and per-AS circuit breakers must be invisible at rate 0 (byte-identical
//! rendered studies), exactly accounted at every rate, and deterministic
//! for a fixed seed.
//!
//! `OFFNET_TRANSIENT_RATE` (used by the CI transient-chaos job) sets the
//! injected failure rate for the lossy comparisons (default 0.2).

use hgsim::{HgWorld, ScenarioConfig};
use offnet_bench::render_study;
use offnet_core::{run_study, StudyConfig};
use proptest::prelude::*;
use scanner::{observe_snapshot, RetryConfig, ScanEngine, TransientPolicy};
use std::sync::{Arc, OnceLock};

fn world() -> &'static HgWorld {
    static W: OnceLock<HgWorld> = OnceLock::new();
    W.get_or_init(|| HgWorld::generate(ScenarioConfig::small()))
}

fn transient_rate() -> f64 {
    std::env::var("OFFNET_TRANSIENT_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2)
}

/// The tentpole's zero-cost claim: attaching the retry layer at rate 0
/// changes nothing — the rendered study (results, quality reports, scan
/// health) is byte-identical to an engine without the policy.
#[test]
fn zero_rate_policy_is_byte_identical() {
    let w = world();
    let config = StudyConfig {
        snapshots: (24, 30),
        ..Default::default()
    };
    let clean = run_study(w, &ScanEngine::rapid7(), &config);
    let wrapped = run_study(
        w,
        &ScanEngine::rapid7().with_transients(Arc::new(TransientPolicy::new(5, 0.0))),
        &config,
    );
    assert_eq!(
        render_study(&clean),
        render_study(&wrapped),
        "a rate-0 transient policy changed the rendered study"
    );
}

/// Satellite: even with the retry layer disabled, the engine's intrinsic
/// transient losses are counted — and the counts reconcile exactly against
/// the engine's own coin flips.
#[test]
fn base_losses_are_counted_exactly_without_retry_layer() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let t = 30;
    let n = w.n_snapshots();
    let obs = observe_snapshot(w, &engine, t).expect("corpus covers t");
    let expected: usize = w
        .endpoints(t)
        .endpoints()
        .iter()
        .filter(|ep| engine.reaches_stable(ep.ip, t, n))
        .filter(|ep| engine.base_transient_lost(ep.ip, t).is_some())
        .count();
    assert!(
        expected > 0,
        "engine injected no base losses; test is vacuous"
    );
    let health = &obs.cert.health;
    assert_eq!(
        health.base_lost_total(),
        expected,
        "base-loss ledger drifted"
    );
    // With no retry policy attached there are no retries, recoveries,
    // give-ups, or breaker events — only the intrinsic losses.
    assert_eq!(health.attempts, health.targets);
    assert_eq!(health.retries, 0);
    assert_eq!(health.recovered, 0);
    assert_eq!(health.gave_up_total(), 0);
    assert_eq!(health.breaker_opens, 0);
    assert_eq!(health.unreachable, 0);
    assert_eq!(health.connected(), health.targets - expected);
}

/// The retry layer at the CI-gated rate: the attempt ledger must balance
/// (`attempts == targets + retries`), retries must actually recover
/// targets, and every counter must flow into the study's aggregate
/// quality report.
#[test]
fn retry_layer_recovers_and_accounts() {
    let w = world();
    let rate = transient_rate();
    let policy = Arc::new(TransientPolicy::new(7, rate));
    let engine = ScanEngine::rapid7().with_transients(policy);
    let config = StudyConfig {
        snapshots: (27, 30),
        ..Default::default()
    };
    let series = run_study(w, &engine, &config);
    let scan = series.aggregate_quality().scan;
    assert_eq!(
        scan.attempts,
        scan.targets + scan.retries,
        "attempt ledger out of balance"
    );
    assert!(scan.retries > 0, "rate {rate} produced no retries");
    assert!(scan.recovered > 0, "retries never recovered a target");
    assert!(
        scan.backoff_wait_s > 0,
        "retries spent no virtual time in backoff"
    );
    assert!(
        scan.recovered <= scan.retries,
        "more recoveries than retries"
    );
    // Per-snapshot reports carry the same ledger, not just the aggregate.
    for snap in &series.snapshots {
        let h = &snap.quality.scan;
        assert_eq!(h.attempts, h.targets + h.retries, "t={}", snap.snapshot_idx);
    }
}

/// Per-AS circuit breakers: at a crushing failure rate with a low
/// threshold, breakers must open and mark the remaining targets of their
/// AS unreachable instead of burning the full retry budget on each.
#[test]
fn breakers_open_under_sustained_failure() {
    let w = world();
    let policy = Arc::new(
        TransientPolicy::new(11, 0.97)
            .with_retry(RetryConfig {
                max_attempts: 2,
                ..Default::default()
            })
            .with_breaker_threshold(3),
    );
    let engine = ScanEngine::rapid7().with_transients(policy);
    let t = 30;
    let obs = observe_snapshot(w, &engine, t).expect("corpus covers t");
    let health = obs.scan_health();
    assert!(health.breaker_opens > 0, "no breaker opened at rate 0.97");
    assert!(
        health.unreachable > 0,
        "open breakers marked nothing unreachable"
    );
    assert!(health.gave_up_total() > 0, "nothing gave up at rate 0.97");
    // Breaker-skipped targets are never admitted, so the attempt ledger
    // still balances over the targets that were.
    assert_eq!(health.attempts, health.targets + health.retries);
}

proptest! {
    /// Backoff schedules are a pure function of (seed, stream, t, ip):
    /// recomputing one yields identical sleeps, every sleep respects the
    /// configured base/cap, and the schedule length is the retry budget.
    #[test]
    fn backoff_schedule_is_deterministic_and_bounded(seed in any::<u64>()) {
        let policy = TransientPolicy::new(seed, 0.5);
        let retry = RetryConfig::default();
        for (stream, t, ip) in [
            (scanner::STREAM_CERT, 3usize, 0x0a00_0001u32),
            (scanner::STREAM_HTTP80, 17, 0xc0a8_0101),
            (scanner::STREAM_HTTPS443, 30, (seed as u32) | 1),
        ] {
            let a = policy.backoff_schedule(stream, t, ip);
            let b = policy.backoff_schedule(stream, t, ip);
            prop_assert_eq!(&a, &b, "schedule not deterministic");
            prop_assert_eq!(a.len() as u32, retry.max_attempts - 1);
            for &sleep in &a {
                prop_assert!(sleep >= retry.base_backoff_s);
                prop_assert!(sleep <= retry.max_backoff_s);
            }
        }
    }

    /// The virtual wait actually spent never exceeds the per-target
    /// budget, whatever the seed draws.
    #[test]
    fn backoff_wait_respects_budget(seed in any::<u64>()) {
        let policy = TransientPolicy::new(seed, 0.5);
        let budget = RetryConfig::default().budget_s;
        let waited = policy.max_budgeted_wait(scanner::STREAM_CERT, 9, seed as u32);
        prop_assert!(
            waited <= budget,
            "waited {waited}s against a {budget}s budget"
        );
    }

    /// Failure classification is deterministic and the injected classes
    /// cover the whole taxonomy at rate 1.
    #[test]
    fn failure_draws_are_deterministic(seed in any::<u64>()) {
        let policy = TransientPolicy::new(seed, 1.0);
        let mut seen = std::collections::BTreeSet::new();
        for attempt in 0..64u32 {
            let a = policy.fails(scanner::STREAM_CERT, 5, 0x0a00_0002, attempt);
            let b = policy.fails(scanner::STREAM_CERT, 5, 0x0a00_0002, attempt);
            prop_assert_eq!(a, b);
            seen.insert(a.expect("rate 1.0 always fails"));
        }
        prop_assert_eq!(seen.len(), scanner::TransientClass::ALL.len());
    }
}
