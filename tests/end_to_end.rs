//! End-to-end integration: world generation → scans → inference →
//! analyses, asserting the paper's qualitative findings hold across crate
//! boundaries.

use hgsim::{Hg, HgWorld, ScenarioConfig, TOP4};
use offnet_core::{run_study, StudyConfig, StudySeries};
use scanner::ScanEngine;
use std::sync::OnceLock;

fn world() -> &'static HgWorld {
    static W: OnceLock<HgWorld> = OnceLock::new();
    W.get_or_init(|| HgWorld::generate(ScenarioConfig::small()))
}

fn study() -> &'static StudySeries {
    static S: OnceLock<StudySeries> = OnceLock::new();
    S.get_or_init(|| run_study(world(), &ScanEngine::rapid7(), &StudyConfig::default()))
}

#[test]
fn headline_finding_footprints_triple() {
    // "the number of networks hosting Hypergiant off-nets has tripled from
    // 2013 to 2021"
    let first = &study().snapshots[0];
    let last = &study().snapshots[30];
    let union = |snap: &offnet_core::SnapshotResult| {
        let mut set = std::collections::HashSet::new();
        for hg in TOP4 {
            set.extend(snap.per_hg[&hg].confirmed_ases.iter().copied());
        }
        set.len()
    };
    let (start, end) = (union(first), union(last));
    let growth = end as f64 / start as f64;
    assert!(
        (2.0..5.0).contains(&growth),
        "hosting ASes {start} -> {end} (x{growth:.2})"
    );
}

#[test]
fn top4_ordering_at_study_end() {
    let series: Vec<(Hg, usize)> = TOP4
        .iter()
        .map(|hg| (*hg, study().confirmed_series(*hg)[30]))
        .collect();
    let google = series[0].1;
    for (hg, n) in &series[1..] {
        assert!(google > *n, "google {google} !> {hg} {n}");
    }
}

#[test]
fn survey_validation_bands() {
    // §5: operators confirmed 89-95% of hosting ASes were found.
    let metrics = analysis::survey_metrics(world(), &study().snapshots[30], 30);
    for m in &metrics {
        if TOP4.contains(&m.hg) {
            assert!(
                (0.80..=1.0).contains(&m.recall),
                "{}: recall {}",
                m.hg,
                m.recall
            );
        }
    }
    // The Cloudflare false positive must be visible.
    let cf = metrics
        .iter()
        .find(|m| m.hg == Hg::Cloudflare)
        .expect("cloudflare row");
    assert_eq!(cf.truth, 0);
    assert!(cf.inferred > 0);
}

#[test]
fn demographics_match_section_6_3() {
    let internet = analysis::demographics::internet_category_shares(world(), 30);
    // Internet: stub-dominated.
    assert!(internet[0] > 0.7);
    for hg in [Hg::Google, Hg::Netflix, Hg::Facebook] {
        let fp = analysis::demographics::footprint_category_shares(study(), world(), hg, 30);
        // Stub+Small+Medium carry most of the footprint...
        assert!(fp[0] + fp[1] + fp[2] > 0.75, "{hg}: {fp:?}");
        // ...but Large/XLarge are over-represented vs the Internet.
        assert!(fp[3] + fp[4] > (internet[3] + internet[4]) * 2.0, "{hg}");
    }
}

#[test]
fn coverage_analyses_consistent() {
    let hosting = study().confirmed_at(Hg::Google, 30);
    let direct = analysis::coverage_by_country(world(), hosting, 30);
    let cone = analysis::coverage_with_cone(world(), hosting, 30);
    for (d, c) in direct.iter().zip(&cone) {
        assert!(
            c.fraction >= d.fraction - 1e-9,
            "{}: cone {} < direct {}",
            d.code,
            c.fraction,
            d.fraction
        );
    }
    assert!(analysis::worldwide_coverage(&cone) > analysis::worldwide_coverage(&direct));
}

#[test]
fn netflix_envelope_reconstruction() {
    let nf = &study().netflix;
    // The three curves coincide outside the episode window...
    assert_eq!(nf.initial[10], nf.with_expired[10]);
    // ...and diverge inside it.
    let mid = 18;
    assert!(nf.with_expired[mid] > nf.initial[mid]);
    assert!(nf.with_non_tls[mid] > nf.with_expired[mid]);
    // After 2019-10 the initial curve recovers to the envelope.
    assert!(nf.initial[26] as f64 > 0.9 * nf.with_expired[26] as f64);
}

#[test]
fn no_footprint_hgs_absent_from_table3() {
    let rows = analysis::table3(study());
    for hg in [Hg::Hulu, Hg::Disney, Hg::Yahoo, Hg::Bamtech, Hg::Highwinds] {
        let row = rows.iter().find(|r| r.hg == hg);
        if let Some(row) = row {
            assert_eq!(row.max_confirmed, 0, "{hg} should have no footprint");
        }
    }
}

#[test]
fn censys_study_covers_supplemental_window_only() {
    let cs = run_study(
        world(),
        &ScanEngine::censys(),
        &StudyConfig {
            snapshots: (0, 30),
            ..Default::default()
        },
    );
    assert_eq!(cs.snapshots.len(), 7, "Censys corpus is 2019-10..2021-04");
    assert_eq!(cs.snapshots[0].snapshot_idx, 24);
    // At overlapping snapshots both engines infer similar Google counts.
    let r7_google = study().confirmed_series(Hg::Google)[24];
    let cs_google = cs.snapshots[0].per_hg[&Hg::Google].confirmed_ases.len();
    let ratio = cs_google as f64 / r7_google as f64;
    assert!(
        (0.85..1.2).contains(&ratio),
        "r7 {r7_google} cs {cs_google}"
    );
}
