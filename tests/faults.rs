//! Fault injection end to end: a zero-rate plan is a byte-identical no-op,
//! bounded corruption is quarantined with exact accounting (pipeline counts
//! equal the injector's ledger) while the §5 series stays within tolerance,
//! and snapshot-level faults (empty scans, dropped archives, panicking
//! per-HG stages) degrade the affected scope instead of aborting the study.
//!
//! `OFFNET_FAULT_RATE` (used by the CI robustness job) runs the uniform
//! corruption sweep at an elevated rate on top of the fixed 5% run.

use hgsim::{Hg, HgWorld, ScenarioConfig, ALL_HGS, TOP4};
use offnet_core::study::learn_reference_fingerprints;
use offnet_core::{process_snapshot, run_study, PipelineContext, RecordError, StudyConfig};
use scanner::{observe_snapshot, FaultClass, FaultPlan, ScanEngine};
use std::sync::{Arc, OnceLock};

fn world() -> &'static HgWorld {
    static W: OnceLock<HgWorld> = OnceLock::new();
    W.get_or_init(|| HgWorld::generate(ScenarioConfig::small()))
}

/// A late-study window (Rapid7 and the reference snapshot both cover it)
/// kept short so every fault scenario can afford its own study run.
fn config() -> StudyConfig {
    StudyConfig {
        snapshots: (24, 30),
        ..Default::default()
    }
}

fn clean() -> &'static offnet_core::StudySeries {
    static S: OnceLock<offnet_core::StudySeries> = OnceLock::new();
    S.get_or_init(|| run_study(world(), &ScanEngine::rapid7(), &config()))
}

/// Run the study with every record-level fault class injected at `rate`,
/// returning the series together with the plan (for its injected ledger).
fn uniform_run(seed: u64, rate: f64) -> (offnet_core::StudySeries, Arc<FaultPlan>) {
    let plan = Arc::new(FaultPlan::uniform_record_faults(seed, rate));
    let engine = ScanEngine::rapid7().with_faults(plan.clone());
    (run_study(world(), &engine, &config()), plan)
}

#[test]
fn zero_rate_plan_is_byte_identical() {
    let plan = Arc::new(FaultPlan::new(99));
    let engine = ScanEngine::rapid7().with_faults(plan.clone());
    let faulted = run_study(world(), &engine, &config());
    let clean = clean();
    assert!(
        plan.injected_total().is_empty(),
        "no-op plan injected faults"
    );
    assert_eq!(clean.snapshots.len(), faulted.snapshots.len());
    for (c, f) in clean.snapshots.iter().zip(&faulted.snapshots) {
        assert_eq!(c.snapshot_idx, f.snapshot_idx);
        assert_eq!(c.validation, f.validation, "t={}", c.snapshot_idx);
        assert_eq!(c.quality, f.quality, "t={}", c.snapshot_idx);
        assert_eq!(c.http_only_ips, f.http_only_ips, "t={}", c.snapshot_idx);
        for hg in ALL_HGS {
            let (a, b) = (&c.per_hg[&hg], &f.per_hg[&hg]);
            assert_eq!(a.candidate_ases, b.candidate_ases, "{hg}");
            assert_eq!(a.confirmed_ases, b.confirmed_ases, "{hg}");
            assert_eq!(a.confirmed_ips, b.confirmed_ips, "{hg}");
        }
    }
    assert_eq!(clean.netflix.initial, faulted.netflix.initial);
    assert_eq!(clean.netflix.with_expired, faulted.netflix.with_expired);
    assert_eq!(clean.netflix.with_non_tls, faulted.netflix.with_non_tls);
}

/// Every quarantined record must be accounted for: the pipeline's
/// per-snapshot quality counts for the injected classes equal the plan's
/// ledger exactly (the clean corpus contributes none of these defects).
fn assert_exact_accounting(series: &offnet_core::StudySeries, plan: &FaultPlan) {
    for snap in &series.snapshots {
        let t = snap.snapshot_idx;
        let inj = plan.injected_for(t);
        let q = &snap.quality;
        let der_injected = inj.count(FaultClass::TruncatedDer)
            + inj.count(FaultClass::GarbageDer)
            + inj.count(FaultClass::BitFlippedDer);
        assert_eq!(
            q.quarantined_count(RecordError::MalformedDer),
            der_injected,
            "malformed-der t={t}"
        );
        assert_eq!(
            q.quarantined_count(RecordError::DuplicateIp),
            inj.count(FaultClass::DuplicateIp),
            "duplicate-ip t={t}"
        );
        assert_eq!(
            q.quarantined_count(RecordError::HeaderMojibake),
            inj.count(FaultClass::MojibakeHeader),
            "header-mojibake t={t}"
        );
        assert_eq!(
            q.quarantined_count(RecordError::HeaderOversized),
            inj.count(FaultClass::OversizedHeader),
            "header-oversized t={t}"
        );
        assert!(!q.is_degraded(), "record faults must not degrade stages");
    }
}

#[test]
fn five_percent_faults_quarantined_exactly_and_series_within_tolerance() {
    let (series, plan) = uniform_run(3, 0.05);
    assert_eq!(series.snapshots.len(), clean().snapshots.len());
    assert!(
        !plan.injected_total().is_empty(),
        "plan injected nothing; the accounting checks are vacuous"
    );
    assert_exact_accounting(&series, &plan);
    // The headline §5 confirmed-AS series for the top-4 HGs must stay
    // within 10% of the clean run (absolute slack 2 for near-zero values).
    for hg in TOP4 {
        let clean_series = clean().confirmed_series(hg);
        let faulted_series = series.confirmed_series(hg);
        for (i, (&c, &f)) in clean_series.iter().zip(&faulted_series).enumerate() {
            let slack = ((0.1 * c as f64).ceil() as usize).max(2);
            let diff = c.abs_diff(f);
            assert!(
                diff <= slack,
                "{hg} snapshot #{i}: clean={c} faulted={f} (slack {slack})"
            );
        }
    }
}

/// The CI robustness job re-runs the uniform sweep at an elevated rate via
/// `OFFNET_FAULT_RATE`. At high rates the series drifts beyond the 10%
/// bound (that bound is claimed for <=5%), but completion and exact
/// quarantine accounting must still hold.
#[test]
fn env_configured_rate_still_accounts_exactly() {
    let Ok(raw) = std::env::var("OFFNET_FAULT_RATE") else {
        return; // fixed-rate coverage above is enough outside CI
    };
    let rate: f64 = raw.parse().expect("OFFNET_FAULT_RATE must be a float");
    assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
    let (series, plan) = uniform_run(17, rate);
    assert_eq!(series.snapshots.len(), clean().snapshots.len());
    assert_exact_accounting(&series, &plan);
}

#[test]
fn empty_cert_snapshots_degrade_to_zero_without_panicking() {
    let plan = Arc::new(FaultPlan::single(5, FaultClass::EmptySnapshot, 1.0));
    let engine = ScanEngine::rapid7().with_faults(plan);
    let series = run_study(world(), &engine, &config());
    assert_eq!(series.snapshots.len(), clean().snapshots.len());
    for snap in &series.snapshots {
        assert!(snap.quality.empty_cert_snapshot, "t={}", snap.snapshot_idx);
        assert_eq!(snap.quality.cert_records_seen, 0);
        for hg in ALL_HGS {
            assert!(
                snap.per_hg[&hg].confirmed_ases.is_empty(),
                "{hg} confirmed off-nets without any certificates"
            );
        }
    }
}

#[test]
fn dropped_snapshots_shrink_the_series_but_not_the_study() {
    let seed = 11;
    let rate = 0.4;
    // The drop coin depends only on (seed, snapshot), so a probe plan
    // predicts exactly which snapshots the study plan will lose.
    let probe = FaultPlan::single(seed, FaultClass::DroppedSnapshot, rate);
    let kept: Vec<usize> = (24..=30).filter(|&t| !probe.drops_snapshot(t)).collect();
    assert!(
        !kept.is_empty() && kept.len() < 7,
        "seed must drop some snapshots and keep some; kept {kept:?}"
    );
    let plan = Arc::new(FaultPlan::single(seed, FaultClass::DroppedSnapshot, rate));
    let engine = ScanEngine::rapid7().with_faults(plan);
    let series = run_study(world(), &engine, &config());
    let got: Vec<usize> = series.snapshots.iter().map(|s| s.snapshot_idx).collect();
    assert_eq!(
        got, kept,
        "study must process exactly the surviving snapshots"
    );
    // Netflix series stay aligned with the surviving snapshots.
    assert_eq!(series.netflix.initial.len(), kept.len());
}

#[test]
fn panicking_hg_stage_degrades_that_hg_and_spares_the_rest() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let obs = observe_snapshot(w, &engine, 30).expect("snapshot in corpus");
    let fps = learn_reference_fingerprints(w, &engine, 28);
    let ctx = PipelineContext::new(w.pki().root_store().clone(), w.org_db(), fps);
    let baseline = process_snapshot(&obs, &ctx);
    assert!(baseline.quality.degraded_hgs.is_empty());

    let hooked = ctx.with_hg_panic_hook(|hg| hg == Hg::Google);
    let result = process_snapshot(&obs, &hooked);
    assert!(
        result
            .quality
            .degraded_hgs
            .contains_key(&Hg::Google.to_string()),
        "degraded HGs: {:?}",
        result.quality.degraded_hgs
    );
    assert_eq!(result.quality.degraded_hgs.len(), 1);
    assert!(result.per_hg[&Hg::Google].confirmed_ases.is_empty());
    assert!(result.per_hg[&Hg::Google].candidate_ases.is_empty());
    for hg in ALL_HGS {
        if hg == Hg::Google {
            continue;
        }
        assert_eq!(
            result.per_hg[&hg].confirmed_ases, baseline.per_hg[&hg].confirmed_ases,
            "{hg} must be untouched by Google's panic"
        );
    }
    // The snapshot itself completed: validation ran, quality was built.
    assert_eq!(result.validation, baseline.validation);
}

mod parser_hardening {
    use super::*;
    use proptest::prelude::*;

    /// One real leaf certificate from the corpus, for mutation testing.
    fn valid_leaf_der() -> &'static Vec<u8> {
        static DER: OnceLock<Vec<u8>> = OnceLock::new();
        DER.get_or_init(|| {
            let obs =
                observe_snapshot(world(), &ScanEngine::rapid7(), 24).expect("snapshot in corpus");
            obs.cert.records[0].chain_der[0].to_vec()
        })
    }

    proptest! {
        #[test]
        fn random_bytes_never_parse_and_never_panic(
            bytes in proptest::collection::vec(any::<u8>(), 0..256)
        ) {
            prop_assert!(x509::Certificate::parse(&bytes).is_err());
        }

        #[test]
        fn mutated_valid_der_never_panics(idx in 0usize..4096, byte in any::<u8>()) {
            let der = valid_leaf_der();
            let mut mutated = der.clone();
            let i = idx % mutated.len();
            mutated[i] = byte;
            let _ = x509::Certificate::parse(&mutated);
            // Truncation at an arbitrary point must also fail cleanly.
            let cut = idx % (der.len() + 1);
            let _ = x509::Certificate::parse(&der[..cut]);
        }
    }

    #[test]
    fn valid_leaf_actually_parses() {
        // Guard for the mutation test: if the baseline leaf stopped
        // parsing, the proptest above would be exercising nothing.
        assert!(x509::Certificate::parse(valid_leaf_der()).is_ok());
    }
}
