//! Determinism: identical seeds reproduce identical worlds, scans, and
//! inferences; different seeds genuinely differ.

use hgsim::{Hg, HgWorld, ScenarioConfig};
use offnet_core::study::learn_reference_fingerprints;
use offnet_core::{process_snapshot, PipelineContext};
use scanner::{observe_snapshot, ScanEngine};

fn run_once(seed: u64) -> (usize, Vec<u32>, Vec<netsim::AsId>) {
    let world = HgWorld::generate(ScenarioConfig::small().with_seed(seed));
    let engine = ScanEngine::rapid7();
    let fps = learn_reference_fingerprints(&world, &engine, 28);
    let ctx = PipelineContext::new(world.pki().root_store().clone(), world.org_db(), fps);
    let obs = observe_snapshot(&world, &engine, 20).expect("snapshot");
    let result = process_snapshot(&obs, &ctx);
    let google = &result.per_hg[&Hg::Google];
    (
        obs.cert.records.len(),
        google.confirmed_ips.clone(),
        google.confirmed_ases.iter().copied().collect(),
    )
}

#[test]
fn same_seed_same_world_same_inference() {
    let a = run_once(7);
    let b = run_once(7);
    assert_eq!(a.0, b.0, "record counts differ");
    assert_eq!(a.1, b.1, "confirmed IPs differ");
    assert_eq!(a.2, b.2, "confirmed ASes differ");
}

#[test]
fn different_seed_different_world() {
    let a = run_once(7);
    let b = run_once(8);
    // AS identities are freshly assigned, so footprints must differ.
    assert_ne!(a.2, b.2, "different seeds produced identical footprints");
}

#[test]
fn endpoint_generation_is_reproducible() {
    let w1 = HgWorld::generate(ScenarioConfig::small());
    let w2 = HgWorld::generate(ScenarioConfig::small());
    let e1 = w1.endpoints(15);
    let e2 = w2.endpoints(15);
    assert_eq!(e1.len(), e2.len());
    for (a, b) in e1.endpoints().iter().zip(e2.endpoints()).take(500) {
        assert_eq!(a.ip, b.ip);
        assert_eq!(a.true_as, b.true_as);
        assert_eq!(a.http_headers, b.http_headers);
    }
}

#[test]
fn scan_records_byte_identical() {
    let world = HgWorld::generate(ScenarioConfig::small());
    let engine = ScanEngine::rapid7();
    let a = observe_snapshot(&world, &engine, 10).unwrap();
    let b = observe_snapshot(&world, &engine, 10).unwrap();
    assert_eq!(a.cert.records.len(), b.cert.records.len());
    for (x, y) in a.cert.records.iter().zip(&b.cert.records).take(500) {
        assert_eq!(x.ip, y.ip);
        assert_eq!(x.chain_der, y.chain_der, "wire bytes differ for {}", x.ip);
    }
}

#[test]
fn zero_rate_fault_plan_is_a_byte_identical_noop() {
    let world = HgWorld::generate(ScenarioConfig::small());
    let plain = ScanEngine::rapid7();
    let plan = std::sync::Arc::new(scanner::FaultPlan::new(42));
    let faulted = ScanEngine::rapid7().with_faults(plan.clone());
    let a = observe_snapshot(&world, &plain, 20).unwrap();
    let b = observe_snapshot(&world, &faulted, 20).unwrap();
    assert!(plan.injected_total().is_empty());
    assert_eq!(a.cert.records.len(), b.cert.records.len());
    for (x, y) in a.cert.records.iter().zip(&b.cert.records) {
        assert_eq!(x.ip, y.ip);
        assert_eq!(x.chain_der, y.chain_der, "wire bytes differ for {}", x.ip);
    }
    for (p, f) in [(&a.http80, &b.http80), (&a.https443, &b.https443)] {
        match (p, f) {
            (Some(p), Some(f)) => assert_eq!(p.records, f.records),
            (None, None) => {}
            _ => panic!("banner stream presence differs under a no-op plan"),
        }
    }
}

#[test]
fn fault_injection_is_deterministic() {
    // Two plans with the same seed and rates corrupt exactly the same
    // records, so a faulted corpus is as reproducible as a clean one.
    let world = HgWorld::generate(ScenarioConfig::small());
    let run = || {
        let plan = std::sync::Arc::new(scanner::FaultPlan::uniform_record_faults(9, 0.1));
        let engine = ScanEngine::rapid7().with_faults(plan.clone());
        let obs = observe_snapshot(&world, &engine, 20).unwrap();
        (obs, plan.injected_for(20))
    };
    let (a, inj_a) = run();
    let (b, inj_b) = run();
    assert_eq!(inj_a, inj_b, "injected ledgers differ between runs");
    assert!(inj_a.total() > 0, "rate 0.1 injected nothing");
    assert_eq!(a.cert.records.len(), b.cert.records.len());
    for (x, y) in a.cert.records.iter().zip(&b.cert.records) {
        assert_eq!(x.ip, y.ip);
        assert_eq!(x.chain_der, y.chain_der, "corruption differs for {}", x.ip);
    }
}
