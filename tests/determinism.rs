//! Determinism: identical seeds reproduce identical worlds, scans, and
//! inferences; different seeds genuinely differ.

use hgsim::{Hg, HgWorld, ScenarioConfig};
use offnet_core::study::learn_reference_fingerprints;
use offnet_core::{process_snapshot, PipelineContext};
use scanner::{observe_snapshot, ScanEngine};

fn run_once(seed: u64) -> (usize, Vec<u32>, Vec<netsim::AsId>) {
    let world = HgWorld::generate(ScenarioConfig::small().with_seed(seed));
    let engine = ScanEngine::rapid7();
    let fps = learn_reference_fingerprints(&world, &engine, 28);
    let ctx = PipelineContext::new(world.pki().root_store().clone(), world.org_db(), fps);
    let obs = observe_snapshot(&world, &engine, 20).expect("snapshot");
    let result = process_snapshot(&obs, &ctx);
    let google = &result.per_hg[&Hg::Google];
    (
        obs.cert.records.len(),
        google.confirmed_ips.clone(),
        google.confirmed_ases.iter().copied().collect(),
    )
}

#[test]
fn same_seed_same_world_same_inference() {
    let a = run_once(7);
    let b = run_once(7);
    assert_eq!(a.0, b.0, "record counts differ");
    assert_eq!(a.1, b.1, "confirmed IPs differ");
    assert_eq!(a.2, b.2, "confirmed ASes differ");
}

#[test]
fn different_seed_different_world() {
    let a = run_once(7);
    let b = run_once(8);
    // AS identities are freshly assigned, so footprints must differ.
    assert_ne!(a.2, b.2, "different seeds produced identical footprints");
}

#[test]
fn endpoint_generation_is_reproducible() {
    let w1 = HgWorld::generate(ScenarioConfig::small());
    let w2 = HgWorld::generate(ScenarioConfig::small());
    let e1 = w1.endpoints(15);
    let e2 = w2.endpoints(15);
    assert_eq!(e1.len(), e2.len());
    for (a, b) in e1.endpoints().iter().zip(e2.endpoints()).take(500) {
        assert_eq!(a.ip, b.ip);
        assert_eq!(a.true_as, b.true_as);
        assert_eq!(a.http_headers, b.http_headers);
    }
}

#[test]
fn scan_records_byte_identical() {
    let world = HgWorld::generate(ScenarioConfig::small());
    let engine = ScanEngine::rapid7();
    let a = observe_snapshot(&world, &engine, 10).unwrap();
    let b = observe_snapshot(&world, &engine, 10).unwrap();
    assert_eq!(a.cert.records.len(), b.cert.records.len());
    for (x, y) in a.cert.records.iter().zip(&b.cert.records).take(500) {
        assert_eq!(x.ip, y.ip);
        assert_eq!(x.chain_der, y.chain_der, "wire bytes differ for {}", x.ip);
    }
}
