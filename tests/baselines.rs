//! Prior-work baselines vs the certificate methodology: the paper's core
//! claim is that DNS-vantage techniques lack coverage while the
//! certificate approach is general and complete.

use hgsim::{Hg, HgWorld, ScenarioConfig};
use offnet_core::baselines::{recall_against_truth, vantage_point_baseline};
use offnet_core::{run_study, StudyConfig};
use scanner::ScanEngine;
use std::sync::OnceLock;

fn world() -> &'static HgWorld {
    static W: OnceLock<HgWorld> = OnceLock::new();
    W.get_or_init(|| HgWorld::generate(ScenarioConfig::small()))
}

#[test]
fn certificate_method_beats_vantage_baseline() {
    let w = world();
    let study = run_study(
        w,
        &ScanEngine::rapid7(),
        &StudyConfig {
            snapshots: (30, 30),
            ..Default::default()
        },
    );
    let cert_recall = {
        let inferred = study.snapshots[0].per_hg[&Hg::Google]
            .confirmed_ases
            .clone();
        recall_against_truth(w, Hg::Google, 30, &inferred)
    };
    let vantage_recall = {
        let discovered = vantage_point_baseline(w, Hg::Google, 30, 200);
        recall_against_truth(w, Hg::Google, 30, &discovered)
    };
    assert!(cert_recall > 0.85, "cert recall {cert_recall}");
    assert!(
        cert_recall > vantage_recall + 0.2,
        "certificates {cert_recall} vs vantage {vantage_recall}"
    );
}

#[test]
fn vantage_baseline_saturates_below_full_coverage() {
    let w = world();
    let r100 = recall_against_truth(
        w,
        Hg::Netflix,
        30,
        &vantage_point_baseline(w, Hg::Netflix, 30, 100),
    );
    // 400 vantages is already ~17% of the small world's ASes — far denser
    // than any real measurement platform — and coverage still falls short.
    let r400 = recall_against_truth(
        w,
        Hg::Netflix,
        30,
        &vantage_point_baseline(w, Hg::Netflix, 30, 400),
    );
    assert!(r400 >= r100);
    assert!(
        r400 < 0.9,
        "even 400 vantages should not reach global coverage: {r400}"
    );
}
