//! Streaming sharded pipeline equivalence: at `--scale small`, a study
//! processed through bounded-memory spilled segments must render
//! **byte-identically** to the in-memory path — across the sequential,
//! parallel, checkpointed, and incremental (delta) drivers, with faults
//! injected, and when segments are reused from a previous run.

use hgsim::{HgWorld, ScenarioConfig};
use offnet_bench::render_study;
use offnet_core::{
    run_study, run_study_incremental, run_study_parallel, ShardingConfig, StudyConfig,
};
use scanner::{FaultPlan, ScanEngine};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

fn world() -> &'static HgWorld {
    static W: OnceLock<HgWorld> = OnceLock::new();
    W.get_or_init(|| HgWorld::generate(ScenarioConfig::small()))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("offnet-sharded-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create spill dir");
    dir
}

fn sharded_config(base: &StudyConfig, shard_size: usize, dir: &Path) -> StudyConfig {
    StudyConfig {
        sharding: Some(ShardingConfig::new(shard_size, dir.to_path_buf())),
        ..base.clone()
    }
}

#[test]
fn sharded_study_renders_byte_identical() {
    let w = world();
    let engine = ScanEngine::rapid7();
    // Straddle the Netflix expired-certificate window so the §6.2 fold
    // carries real cross-snapshot state through the sharded path.
    let base = StudyConfig {
        snapshots: (14, 22),
        ..Default::default()
    };
    let mono = render_study(&run_study(w, &engine, &base));

    let dir = temp_dir("seq");
    // A deliberately odd shard size: chunks never align with anything.
    let config = sharded_config(&base, 257, &dir);
    let sharded = run_study(w, &engine, &config);
    let ledger = config.sharding.as_ref().unwrap().ledger.clone();
    assert_eq!(mono, render_study(&sharded), "sharded render diverged");

    // The run actually sharded: multiple segments per snapshot, all
    // built fresh, none reused.
    assert!(ledger.segments_built() > 9, "{}", ledger.segments_built());
    assert_eq!(ledger.segments_reused(), 0);
    let rows = ledger.rows();
    assert!(rows.iter().all(|r| r.segment_bytes > 0 && !r.reused));
    assert!(rows.iter().any(|r| r.endpoints == 257));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn segment_reuse_is_byte_identical_and_skips_rebuilds() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let base = StudyConfig {
        snapshots: (18, 21),
        ..Default::default()
    };
    let dir = temp_dir("reuse");

    let first_cfg = sharded_config(&base, 400, &dir);
    let first = render_study(&run_study(w, &engine, &first_cfg));
    let first_ledger = first_cfg.sharding.as_ref().unwrap().ledger.clone();
    assert!(first_ledger.segments_built() > 0);

    // Second run over the same spill dir: every segment is reused
    // (admitted, not rescanned), and the rendering is still identical.
    let second_cfg = sharded_config(&base, 400, &dir);
    let second = render_study(&run_study(w, &engine, &second_cfg));
    let second_ledger = second_cfg.sharding.as_ref().unwrap().ledger.clone();
    assert_eq!(first, second);
    assert_eq!(second_ledger.segments_built(), 0, "rebuilt despite cache");
    assert_eq!(
        second_ledger.segments_reused(),
        first_ledger.segments_built()
    );

    // A different shard size changes segment fingerprints: everything is
    // stale, everything rebuilds, and the output still matches.
    let resized_cfg = sharded_config(&base, 333, &dir);
    let resized = render_study(&run_study(w, &engine, &resized_cfg));
    let resized_ledger = resized_cfg.sharding.as_ref().unwrap().ledger.clone();
    assert_eq!(first, resized);
    assert_eq!(resized_ledger.segments_reused(), 0, "stale segments reused");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_segment_rebuilds_transparently() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let base = StudyConfig {
        snapshots: (20, 20),
        ..Default::default()
    };
    let dir = temp_dir("corrupt");
    let cfg = sharded_config(&base, 500, &dir);
    let clean = render_study(&run_study(w, &engine, &cfg));

    // Truncate one segment and flip bytes in another.
    let seg_dir = dir.join("t0020");
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&seg_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segs.sort();
    assert!(segs.len() >= 2, "want multiple segments, got {segs:?}");
    let bytes = std::fs::read(&segs[0]).unwrap();
    std::fs::write(&segs[0], &bytes[..bytes.len() / 2]).unwrap();
    let mut bytes = std::fs::read(&segs[1]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&segs[1], &bytes).unwrap();

    let cfg2 = sharded_config(&base, 500, &dir);
    let rebuilt = render_study(&run_study(w, &engine, &cfg2));
    let ledger = cfg2.sharding.as_ref().unwrap().ledger.clone();
    assert_eq!(clean, rebuilt, "corruption leaked into results");
    assert_eq!(ledger.segments_built(), 2, "exactly the damaged segments");
    assert_eq!(ledger.segments_reused(), segs.len() - 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn faulted_partial_coverage_sharded_matches() {
    // Censys starts mid-study (skipped snapshots) and the fault plan
    // corrupts records: the sharded path must reproduce the quarantine
    // accounting and scan-health report byte-for-byte.
    let w = world();
    let base = StudyConfig {
        snapshots: (0, 30),
        ..Default::default()
    };
    let mk_engine = || {
        let plan = Arc::new(FaultPlan::uniform_record_faults(13, 0.08));
        ScanEngine::censys().with_faults(plan)
    };
    let mono = render_study(&run_study(w, &mk_engine(), &base));
    let dir = temp_dir("faults");
    let cfg = sharded_config(&base, 701, &dir);
    let sharded = render_study(&run_study(w, &mk_engine(), &cfg));
    assert_eq!(mono, sharded);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_driver_sharded_matches_sequential_in_memory() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let base = StudyConfig {
        snapshots: (15, 21),
        ..Default::default()
    };
    let mono = render_study(&run_study(w, &engine, &base));
    let dir = temp_dir("par");
    let cfg = sharded_config(&base, 450, &dir);
    let sharded = render_study(&run_study_parallel(w, &engine, &cfg, 4));
    assert_eq!(mono, sharded);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn incremental_driver_sharded_matches() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let base = StudyConfig {
        snapshots: (16, 22),
        ..Default::default()
    };
    let mono = run_study_incremental(w, &engine, &base);
    let dir = temp_dir("inc");
    let cfg = sharded_config(&base, 512, &dir);
    let sharded = run_study_incremental(w, &engine, &cfg);
    assert_eq!(
        render_study(&mono.series),
        render_study(&sharded.series),
        "sharded delta study diverged"
    );
    // The delta engine's reuse decisions must agree: same snapshots
    // recomputed in full, same per-HG replay/recompute split.
    assert_eq!(mono.reports.len(), sharded.reports.len());
    for (m, s) in mono.reports.iter().zip(&sharded.reports) {
        assert_eq!(m.full_compute, s.full_compute, "t={}", m.snapshot_idx);
        assert_eq!(m.hgs_replayed, s.hgs_replayed, "t={}", m.snapshot_idx);
        assert_eq!(m.hgs_recomputed, s.hgs_recomputed, "t={}", m.snapshot_idx);
        assert_eq!(m.chains_new, s.chains_new, "t={}", m.snapshot_idx);
    }
    // Incrementality survived sharding: later snapshots replay HGs.
    assert!(
        sharded.reports.iter().skip(1).any(|r| r.hgs_replayed > 0),
        "sharded delta engine never replayed"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn pooled_config(
    base: &StudyConfig,
    shard_size: usize,
    dir: &Path,
    workers: usize,
    depth: usize,
) -> StudyConfig {
    StudyConfig {
        sharding: Some(
            ShardingConfig::new(shard_size, dir.to_path_buf())
                .with_workers(workers)
                .with_depth(depth),
        ),
        ..base.clone()
    }
}

#[test]
fn worker_pool_renders_byte_identical_across_counts() {
    // The pipelined producer must be invisible in the output: one worker
    // (inline serial), a pool with a shallow channel, and a pool with a
    // deep channel all render the same bytes as the monolithic path.
    let w = world();
    let engine = ScanEngine::rapid7();
    let base = StudyConfig {
        snapshots: (17, 21),
        ..Default::default()
    };
    let mono = render_study(&run_study(w, &engine, &base));

    let mut built = Vec::new();
    for (tag, workers, depth) in [("w1", 1, 1), ("w4s", 4, 2), ("w4d", 4, 9)] {
        let dir = temp_dir(tag);
        let cfg = pooled_config(&base, 311, &dir, workers, depth);
        let rendered = render_study(&run_study(w, &engine, &cfg));
        assert_eq!(
            mono, rendered,
            "diverged at workers={workers} depth={depth}"
        );
        built.push(cfg.sharding.as_ref().unwrap().ledger.segments_built());
        let _ = std::fs::remove_dir_all(&dir);
    }
    // Same chunking, same work: every configuration built the same
    // number of segments.
    assert!(built.windows(2).all(|w| w[0] == w[1]), "{built:?}");
}

#[test]
fn faulted_worker_pool_matches_serial() {
    // Overlapped pipelining under a 10% record-fault plan: fault coins
    // are per-record, so the worker pool must reproduce the quarantine
    // accounting bit-for-bit at any worker count.
    let w = world();
    let base = StudyConfig {
        snapshots: (12, 18),
        ..Default::default()
    };
    let mk_engine = || {
        let plan = Arc::new(FaultPlan::uniform_record_faults(7, 0.10));
        ScanEngine::rapid7().with_faults(plan)
    };
    let mono = render_study(&run_study(w, &mk_engine(), &base));

    let dir_serial = temp_dir("fault-w1");
    let serial_cfg = pooled_config(&base, 409, &dir_serial, 1, 1);
    let serial = render_study(&run_study(w, &mk_engine(), &serial_cfg));
    assert_eq!(mono, serial);

    let dir_pool = temp_dir("fault-w4");
    let pool_cfg = pooled_config(&base, 409, &dir_pool, 4, 3);
    let pooled = render_study(&run_study(w, &mk_engine(), &pool_cfg));
    assert_eq!(mono, pooled, "faulted pool render diverged");
    let _ = std::fs::remove_dir_all(&dir_serial);
    let _ = std::fs::remove_dir_all(&dir_pool);
}

#[test]
fn kill_resume_reuses_parallel_built_segments() {
    // Simulate a mid-snapshot kill after a pooled run: delete a suffix of
    // the segments a 4-worker producer persisted, then resume with the
    // pool. The surviving parallel-built prefix is admitted, only the
    // missing tail is rebuilt, and the render never wavers.
    let w = world();
    let engine = ScanEngine::rapid7();
    let base = StudyConfig {
        snapshots: (20, 20),
        ..Default::default()
    };
    let dir = temp_dir("kill");
    let first_cfg = pooled_config(&base, 400, &dir, 4, 4);
    let clean = render_study(&run_study(w, &engine, &first_cfg));
    let n_segments = first_cfg.sharding.as_ref().unwrap().ledger.segments_built();
    assert!(n_segments >= 4, "want several segments, got {n_segments}");

    let seg_dir = dir.join("t0020");
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&seg_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segs.sort();
    let keep = segs.len() / 2;
    for path in &segs[keep..] {
        std::fs::remove_file(path).unwrap();
    }

    let resume_cfg = pooled_config(&base, 400, &dir, 4, 4);
    let resumed = render_study(&run_study(w, &engine, &resume_cfg));
    let ledger = resume_cfg.sharding.as_ref().unwrap().ledger.clone();
    assert_eq!(clean, resumed, "kill/resume render diverged");
    assert_eq!(ledger.segments_reused(), keep, "parallel-built prefix lost");
    assert_eq!(ledger.segments_built(), segs.len() - keep);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resident_memory_stays_within_depth_bound() {
    // The pipeline admits at most `depth` shards between feed and fold
    // and the consumer holds at most `workers` decoded shards: the
    // realized concurrent-residency high-water mark must stay within
    // max(depth, workers) × the largest single shard.
    let w = world();
    let engine = ScanEngine::rapid7();
    let base = StudyConfig {
        snapshots: (21, 22),
        ..Default::default()
    };
    let dir = temp_dir("resident");
    let (workers, depth) = (4, 3);
    let cfg = pooled_config(&base, 300, &dir, workers, depth);
    let _ = run_study(w, &engine, &cfg);
    let ledger = cfg.sharding.as_ref().unwrap().ledger.clone();
    let largest = ledger.peak_shard_interned_bytes();
    let peak = ledger.peak_resident_interned_bytes();
    assert!(
        peak >= largest,
        "peak {peak} below a single shard {largest}"
    );
    let bound = depth.max(workers) * largest;
    assert!(
        peak <= bound,
        "resident peak {peak} exceeds {}x shard bound {bound}",
        depth.max(workers)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_memory_accounting_invariants() {
    let w = world();
    let engine = ScanEngine::rapid7();
    let t = 22usize;
    let base = StudyConfig {
        snapshots: (t, t),
        ..Default::default()
    };

    // Monolithic reference corpus for the same snapshot.
    let obs = scanner::observe_snapshot(w, &engine, t).expect("snapshot in corpus");
    let mono = offnet_core::SnapshotCorpus::build(
        &obs,
        w.pki().root_store(),
        &offnet_core::standard_validate_options(),
        None,
    );

    let dir = temp_dir("mem");
    let cfg = sharded_config(&base, 300, &dir);
    let _ = run_study(w, &engine, &cfg);
    let rows = cfg.sharding.as_ref().unwrap().ledger.rows();
    assert!(rows.len() > 3, "want several shards, got {}", rows.len());

    // The string model is per-record additive: shard sum reproduces the
    // monolithic figure exactly.
    let sum_string: usize = rows.iter().map(|r| r.string_model_bytes).sum();
    assert_eq!(sum_string, mono.memory.string_model_bytes);

    // Bounded peak memory: every resident shard is strictly smaller than
    // the monolithic interned corpus, by a margin that scales with the
    // shard count.
    let peak = cfg
        .sharding
        .as_ref()
        .unwrap()
        .ledger
        .peak_shard_interned_bytes();
    assert!(peak > 0);
    assert!(
        peak * 2 < mono.memory.interned_bytes,
        "peak shard {peak} not bounded vs monolithic {}",
        mono.memory.interned_bytes
    );

    // Segment buffers are accounted: every shard spilled a non-empty
    // payload, and endpoint counts tile the snapshot exactly.
    assert!(rows.iter().all(|r| r.segment_bytes > 0));
    let mut expected_endpoints = 0usize;
    w.for_each_endpoint(t, |_| expected_endpoints += 1);
    let total: usize = rows.iter().map(|r| r.endpoints).sum();
    assert_eq!(total, expected_endpoints);
    let _ = std::fs::remove_dir_all(&dir);
}
