//! Offline drop-in subset of `parking_lot`, backed by `std::sync`.
//!
//! API-compatible for the surface this workspace uses: `Mutex`/`RwLock`
//! with panic-free, poison-transparent guards (parking_lot has no
//! poisoning, so we unwrap through `PoisonError` to match).

use std::sync::{PoisonError, TryLockError};

#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot has no poisoning; our wrapper must not either.
        assert_eq!(*m.lock(), 1);
    }
}
