//! Value-generation strategies.

use crate::string::RegexGen;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// The full-domain strategy, `any::<T>()`.
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Primitive types with a whole-domain uniform distribution.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($ty:ty => $method:ident),+ $(,)?) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.$method() as $ty
            }
        })+
    };
}

arbitrary_uint!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u32() as i32) < 0
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

impl<V: rand::SampleUniform> Strategy for Range<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        rng.gen_range(self.clone())
    }
}

impl<V: rand::SampleUniform> Strategy for RangeInclusive<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        rng.gen_range(self.clone())
    }
}

/// Regex-literal string strategy (`"[a-z]{1,10}"` style patterns).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        RegexGen::parse(self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_and_ranges_generate() {
        let mut rng = TestRng::seed_from_u64(1);
        let _: u8 = any::<u8>().generate(&mut rng);
        let v = (5u32..9).generate(&mut rng);
        assert!((5..9).contains(&v));
        let w = (1u8..=3).generate(&mut rng);
        assert!((1..=3).contains(&w));
    }
}
