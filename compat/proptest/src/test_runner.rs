//! Deterministic per-test RNG plumbing for the `proptest!` macro.

pub use rand::rngs::StdRng as TestRng;
use rand::SeedableRng;

/// Seed a [`TestRng`] from a test's name (FNV-1a), so each property test
/// gets its own stable, reproducible stream.
pub fn rng_for(name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}

/// Number of cases each property test runs (`PROPTEST_CASES`, default 256).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_name_same_stream() {
        let mut a = rng_for("alpha");
        let mut b = rng_for("alpha");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_names_differ() {
        let mut a = rng_for("alpha");
        let mut b = rng_for("beta");
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
