//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing a `Vec` of values from `element`, with a length
/// drawn from `size` (any strategy over `usize`, e.g. `0..512`).
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

pub fn vec<S, R>(element: S, size: R) -> VecStrategy<S, R>
where
    S: Strategy,
    R: Strategy<Value = usize>,
{
    VecStrategy { element, size }
}

impl<S, R> Strategy for VecStrategy<S, R>
where
    S: Strategy,
    R: Strategy<Value = usize>,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;
    use rand::SeedableRng;

    #[test]
    fn lengths_respect_size_range() {
        let mut rng = TestRng::seed_from_u64(3);
        let strat = vec(any::<u8>(), 2usize..5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn nested_vec_works() {
        let mut rng = TestRng::seed_from_u64(4);
        let strat = vec(vec(any::<u8>(), 0usize..3), 0usize..4);
        let v = strat.generate(&mut rng);
        assert!(v.len() < 4);
        assert!(v.iter().all(|inner| inner.len() < 3));
    }
}
