//! Offline mini property-testing harness, API-compatible with the subset
//! of `proptest` this workspace uses: the `proptest!` macro, `any::<T>()`,
//! integer/float range strategies, regex-literal string strategies, and
//! `proptest::collection::vec`.
//!
//! Each generated test runs `PROPTEST_CASES` (default 256) deterministic
//! cases seeded from the test's name, so failures are reproducible.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! proptest {
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let mut __proptest_rng = $crate::test_runner::rng_for(stringify!($name));
            for __proptest_case in 0..$crate::test_runner::cases() {
                $(let $arg = ($strat).generate(&mut __proptest_rng);)+
                $body
            }
        }
        $crate::proptest!($($rest)*);
    };
    () => {};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_any(x in 0u8..10, y in any::<u32>(), f in 0.0f64..1.0) {
            prop_assert!(x < 10);
            let _ = y;
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_regex(
            v in crate::collection::vec(any::<u8>(), 0..16),
            s in "[a-z]{1,5}(\\.[a-z]{1,3}){1,2}",
        ) {
            prop_assert!(v.len() < 16);
            let labels: Vec<&str> = s.split('.').collect();
            prop_assert!(labels.len() >= 2 && labels.len() <= 3, "{}", s);
            prop_assert!(labels.iter().all(|l| !l.is_empty()));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::rng_for("x");
        let mut b = crate::test_runner::rng_for("x");
        let sa = (0u64..1000).generate(&mut a);
        let sb = (0u64..1000).generate(&mut b);
        assert_eq!(sa, sb);
    }
}
