//! Regex-literal string generation for patterns like
//! `"[a-z0-9-]{1,12}(\\.[a-z0-9-]{1,12}){0,3}"` and `"\\PC{0,24}"`.
//!
//! Supports exactly the syntax this workspace's tests use: character
//! classes with ranges and a literal trailing `-`, `\`-escaped literals,
//! the `\PC` (any non-control character) escape, groups, and `{n}` /
//! `{m,n}` repetition. Anything else panics with a clear message so a
//! new pattern fails loudly instead of generating the wrong language.

use crate::test_runner::TestRng;
use rand::Rng;
use std::iter::Peekable;
use std::str::Chars;

enum Node {
    /// Inclusive char ranges; a literal char is a `(c, c)` range.
    Class(Vec<(char, char)>),
    /// `\PC`: any non-control character.
    AnyNonControl,
    Group(Vec<Rep>),
}

struct Rep {
    node: Node,
    min: u32,
    max: u32,
}

pub struct RegexGen {
    seq: Vec<Rep>,
}

impl RegexGen {
    pub fn parse(pattern: &str) -> Self {
        let mut chars = pattern.chars().peekable();
        let seq = parse_seq(&mut chars, false, pattern);
        if chars.next().is_some() {
            panic!("regex strategy: unbalanced ')' in {pattern:?}");
        }
        RegexGen { seq }
    }

    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        generate_seq(&self.seq, rng, &mut out);
        out
    }
}

fn generate_seq(seq: &[Rep], rng: &mut TestRng, out: &mut String) {
    for rep in seq {
        let count = rng.gen_range(rep.min..=rep.max);
        for _ in 0..count {
            match &rep.node {
                Node::Class(ranges) => out.push(sample_class(ranges, rng)),
                Node::AnyNonControl => out.push(sample_non_control(rng)),
                Node::Group(inner) => generate_seq(inner, rng, out),
            }
        }
    }
}

fn sample_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u32 = ranges
        .iter()
        .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
        .sum();
    let mut idx = rng.gen_range(0..total);
    for &(lo, hi) in ranges {
        let span = hi as u32 - lo as u32 + 1;
        if idx < span {
            return char::from_u32(lo as u32 + idx).expect("class range holds valid chars");
        }
        idx -= span;
    }
    unreachable!("index within total weight")
}

/// Pool for `\PC`: printable ASCII plus a spread of multi-byte
/// characters, so UTF-8 handling gets exercised without emitting
/// control characters.
fn sample_non_control(rng: &mut TestRng) -> char {
    const EXTRA: &[char] = &['à', 'é', 'ß', 'λ', 'Ж', '中', '日', '\u{2603}'];
    let n = (0x7f - 0x20) as u32 + EXTRA.len() as u32;
    let idx = rng.gen_range(0..n);
    if idx < (0x7f - 0x20) {
        char::from_u32(0x20 + idx).unwrap()
    } else {
        EXTRA[(idx - (0x7f - 0x20)) as usize]
    }
}

fn parse_seq(chars: &mut Peekable<Chars<'_>>, in_group: bool, pattern: &str) -> Vec<Rep> {
    let mut seq = Vec::new();
    while let Some(&c) = chars.peek() {
        let node = match c {
            ')' if in_group => break,
            '(' => {
                chars.next();
                let inner = parse_seq(chars, true, pattern);
                match chars.next() {
                    Some(')') => {}
                    _ => panic!("regex strategy: unclosed group in {pattern:?}"),
                }
                Node::Group(inner)
            }
            '[' => {
                chars.next();
                Node::Class(parse_class(chars, pattern))
            }
            '\\' => {
                chars.next();
                match chars.next() {
                    Some('P') => match chars.next() {
                        Some('C') => Node::AnyNonControl,
                        other => panic!("regex strategy: unsupported \\P{other:?} in {pattern:?}"),
                    },
                    Some(esc) => Node::Class(vec![(esc, esc)]),
                    None => panic!("regex strategy: trailing backslash in {pattern:?}"),
                }
            }
            '{' | '}' | ']' | '*' | '+' | '?' | '|' | '^' | '$' => {
                panic!("regex strategy: unsupported metacharacter {c:?} in {pattern:?}")
            }
            lit => {
                chars.next();
                Node::Class(vec![(lit, lit)])
            }
        };
        let (min, max) = parse_quantifier(chars, pattern);
        seq.push(Rep { node, min, max });
    }
    seq
}

fn parse_class(chars: &mut Peekable<Chars<'_>>, pattern: &str) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    loop {
        let c = match chars.next() {
            Some(']') => return ranges,
            Some('\\') => chars
                .next()
                .unwrap_or_else(|| panic!("regex strategy: trailing backslash in {pattern:?}")),
            Some(c) => c,
            None => panic!("regex strategy: unclosed class in {pattern:?}"),
        };
        // `a-z` range, unless the `-` is last in the class (then literal).
        if chars.peek() == Some(&'-') {
            let mut ahead = chars.clone();
            ahead.next();
            match ahead.peek() {
                Some(&']') | None => ranges.push((c, c)),
                Some(&hi) => {
                    chars.next();
                    chars.next();
                    assert!(c <= hi, "regex strategy: inverted range in {pattern:?}");
                    ranges.push((c, hi));
                }
            }
        } else {
            ranges.push((c, c));
        }
    }
}

fn parse_quantifier(chars: &mut Peekable<Chars<'_>>, pattern: &str) -> (u32, u32) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut min_digits = String::new();
    let mut max_digits = None;
    loop {
        match chars.next() {
            Some('}') => break,
            Some(',') => max_digits = Some(String::new()),
            Some(d) if d.is_ascii_digit() => match &mut max_digits {
                Some(m) => m.push(d),
                None => min_digits.push(d),
            },
            other => panic!("regex strategy: bad quantifier char {other:?} in {pattern:?}"),
        }
    }
    let min: u32 = min_digits
        .parse()
        .unwrap_or_else(|_| panic!("regex strategy: bad quantifier in {pattern:?}"));
    let max = match max_digits {
        Some(m) => m
            .parse()
            .unwrap_or_else(|_| panic!("regex strategy: bad quantifier in {pattern:?}")),
        None => min,
    };
    assert!(
        min <= max,
        "regex strategy: inverted quantifier in {pattern:?}"
    );
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn hostname_pattern_generates_valid_hosts() {
        let gen = RegexGen::parse("[a-z0-9-]{1,12}(\\.[a-z0-9-]{1,12}){0,3}");
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let s = gen.generate(&mut rng);
            let labels: Vec<&str> = s.split('.').collect();
            assert!((1..=4).contains(&labels.len()), "{s}");
            for l in &labels {
                assert!((1..=12).contains(&l.len()), "{s}");
                assert!(l
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
            }
        }
    }

    #[test]
    fn exact_count_and_class_with_punct() {
        let gen = RegexGen::parse("[A-Z]{2}");
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..100 {
            let s = gen.generate(&mut rng);
            assert_eq!(s.len(), 2);
            assert!(s.chars().all(|c| c.is_ascii_uppercase()));
        }
        let gen = RegexGen::parse("[a-zA-Z0-9 .,'()-]{0,40}");
        for _ in 0..200 {
            let s = gen.generate(&mut rng);
            assert!(s.chars().count() <= 40);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " .,'()-".contains(c)));
        }
    }

    #[test]
    fn non_control_escape() {
        let gen = RegexGen::parse("\\PC{0,24}");
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = gen.generate(&mut rng);
            assert!(s.chars().count() <= 24);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }
}
