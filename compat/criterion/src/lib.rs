//! Offline stand-in for the `criterion` crate, covering the subset this
//! workspace's benches use: `Criterion::benchmark_group`, group
//! `sample_size`/`throughput`/`bench_function`/`finish`, `Bencher::iter`,
//! `Throughput::Bytes`/`Elements`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is simple wall-clock timing: each benchmark is calibrated
//! to ~2 ms per sample, `sample_size` samples are taken, and the median
//! per-iteration time is reported. No plots, no statistics beyond
//! median/min/max — enough to compare implementations in this repo.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            sample_size: 100,
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        self
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            per_iter: Duration::ZERO,
            min: Duration::ZERO,
            max: Duration::ZERO,
        };
        f(&mut bencher);
        let label = if self.name.is_empty() {
            id.to_owned()
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut line = format!(
            "{label:<40} time: [{} {} {}]",
            fmt_duration(bencher.min),
            fmt_duration(bencher.per_iter),
            fmt_duration(bencher.max),
        );
        if let Some(tp) = self.throughput {
            let per_sec = |count: u64| count as f64 / bencher.per_iter.as_secs_f64().max(1e-12);
            match tp {
                Throughput::Bytes(n) => {
                    line.push_str(&format!(
                        " thrpt: {:.2} MiB/s",
                        per_sec(n) / (1024.0 * 1024.0)
                    ));
                }
                Throughput::Elements(n) => {
                    line.push_str(&format!(" thrpt: {:.2} Melem/s", per_sec(n) / 1e6));
                }
            }
        }
        println!("{line}");
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    sample_size: usize,
    per_iter: Duration,
    min: Duration,
    max: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: grow the iteration count until one sample takes ~2 ms.
        let mut iters: u64 = 1;
        let per_sample = Duration::from_millis(2);
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= per_sample || iters >= 1 << 20 {
                break;
            }
            // Aim past the target so the loop terminates quickly.
            let scale = per_sample.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
            iters = (iters as f64 * scale.clamp(2.0, 100.0)).ceil() as u64;
        }

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed() / iters as u32);
        }
        samples.sort();
        self.per_iter = samples[samples.len() / 2];
        self.min = samples[0];
        self.max = *samples.last().expect("sample_size >= 2");
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        group.throughput(Throughput::Bytes(64));
        let mut calls = 0u64;
        group.bench_function("sum", |b| {
            b.iter(|| {
                calls += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.finish();
        assert!(calls > 0);
    }
}
