//! Named RNGs. `StdRng` mirrors rand 0.8's (ChaCha 12 rounds) including
//! rand_core's `BlockRng` buffered word-consumption order.

use crate::chacha::ChaCha12Core;
use crate::{RngCore, SeedableRng};

/// The standard RNG, a buffered ChaCha12 — deterministic per seed.
#[derive(Clone, Debug)]
pub struct StdRng {
    core: ChaCha12Core,
    results: [u32; 16],
    index: usize,
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self {
            core: ChaCha12Core::new(seed),
            results: [0; 16],
            index: 16, // empty buffer, generate on first use
        }
    }
}

impl StdRng {
    fn refill(&mut self) {
        self.results = self.core.generate();
        self.index = 0;
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.results[self.index];
        self.index += 1;
        v
    }

    /// Matches rand_core `BlockRng::next_u64`: two buffered words little
    /// end first, straddling block boundaries the same way.
    fn next_u64(&mut self) -> u64 {
        let len = 16;
        let index = self.index;
        if index < len - 1 {
            self.index += 2;
            (self.results[index] as u64) | ((self.results[index + 1] as u64) << 32)
        } else if index >= len {
            self.refill();
            self.index = 2;
            (self.results[0] as u64) | ((self.results[1] as u64) << 32)
        } else {
            let x = self.results[len - 1] as u64;
            self.refill();
            self.index = 1;
            let y = self.results[0] as u64;
            (y << 32) | x
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_straddles_blocks_consistently() {
        // Drawing 16 u32s then a u64 exercises the boundary path.
        let mut a = StdRng::seed_from_u64(5);
        for _ in 0..15 {
            a.next_u32();
        }
        let straddled = a.next_u64();

        let mut b = StdRng::seed_from_u64(5);
        let mut last = 0u32;
        for _ in 0..16 {
            last = b.next_u32();
        }
        let first_next = b.next_u32();
        assert_eq!(straddled, (last as u64) | ((first_next as u64) << 32));
    }

    #[test]
    fn fill_bytes_deterministic() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut ba = [0u8; 37];
        let mut bb = [0u8; 37];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }
}
