//! Offline drop-in subset of the `rand` crate (v0.8 API).
//!
//! The build environment has no access to crates.io, so this vendored
//! crate reimplements exactly the surface the workspace uses:
//!
//! - [`rngs::StdRng`]: ChaCha with 12 rounds, seeded through the same
//!   PCG32-based `seed_from_u64` expansion rand_core 0.6 uses, with
//!   rand_core's `BlockRng` word-consumption order — so seeded streams
//!   match the real crate bit for bit.
//! - [`Rng::gen_range`] for integer and float ranges (widening-multiply
//!   rejection sampling / exponent-trick floats, as in rand 0.8).
//! - [`Rng::gen_bool`] (Bernoulli via 64-bit integer comparison).
//! - [`seq::SliceRandom::shuffle`] and `choose_multiple`.
//!
//! Nothing here is cryptographic; it only needs to be a good, fast,
//! deterministic PRNG for the simulator.

pub mod rngs;
pub mod seq;

mod chacha;
mod uniform;

pub use uniform::{SampleRange, SampleUniform};

/// Seeding trait (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with PCG32, exactly as
    /// rand_core 0.6 does, then delegate to [`SeedableRng::from_seed`].
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let bytes = pcg32(&mut state);
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Core RNG trait (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// User-facing sampling trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value uniformly from a range (`Range` or `RangeInclusive`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: uniform::SampleUniform,
        R: uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p` (rand 0.8's `Bernoulli`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        if p == 1.0 {
            return true;
        }
        // rand 0.8 scales into a 64-bit integer and compares.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }

    /// Sample from the Standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the Standard distribution (`rng.gen()`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() as i32) < 0
    }
}

impl Standard for f64 {
    /// 53-bit multiply method, as rand 0.8's Standard for f64.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let scale = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * scale
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let scale = 1.0 / ((1u32 << 24) as f32);
        (rng.next_u32() >> 8) as f32 * scale
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_stream_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((0.28..0.32).contains(&frac), "{frac}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
