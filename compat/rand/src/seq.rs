//! Sequence helpers (subset of `rand::seq`).

use crate::{Rng, RngCore};

pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle, iterating from the tail as rand 0.8 does.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Choose `amount` distinct elements (Floyd's algorithm, the branch
    /// rand 0.8 takes for small amounts).
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;

    /// Choose one element uniformly, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..i + 1));
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len()) as u32;
        let length = self.len() as u32;
        let mut indices: Vec<u32> = Vec::with_capacity(amount as usize);
        for j in length - amount..length {
            let t = rng.gen_range(0..=j);
            if indices.contains(&t) {
                indices.push(j);
            } else {
                indices.push(t);
            }
        }
        indices
            .into_iter()
            .map(|i| &self[i as usize])
            .collect::<Vec<_>>()
            .into_iter()
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn choose_multiple_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let v: Vec<u32> = (0..50).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "duplicates in {picked:?}");
    }

    #[test]
    fn choose_multiple_caps_at_len() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [1u8, 2, 3];
        assert_eq!(v.choose_multiple(&mut rng, 10).count(), 3);
    }
}
