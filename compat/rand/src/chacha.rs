//! ChaCha block function with 12 rounds, matching `rand_chacha`'s
//! `ChaCha12Rng` word stream for a given 32-byte seed (64-bit block
//! counter in state words 12–13, zero stream id in 14–15, little-endian
//! output words consumed in order).

#[derive(Clone, Debug)]
pub struct ChaCha12Core {
    key: [u32; 8],
    counter: u64,
}

impl ChaCha12Core {
    pub fn new(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        Self { key, counter: 0 }
    }

    /// Produce the next 16-word block and advance the counter.
    pub fn generate(&mut self) -> [u32; 16] {
        const C: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&C);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] = stream id = 0
        let mut x = state;
        for _ in 0..6 {
            // Two rounds per iteration: column + diagonal.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (o, s) in x.iter_mut().zip(state.iter()) {
            *o = o.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        x
    }
}

#[inline(always)]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_change_with_counter() {
        let mut core = ChaCha12Core::new([7u8; 32]);
        let a = core.generate();
        let b = core.generate();
        assert_ne!(a, b);
    }

    #[test]
    fn same_seed_same_blocks() {
        let mut a = ChaCha12Core::new([3u8; 32]);
        let mut b = ChaCha12Core::new([3u8; 32]);
        assert_eq!(a.generate(), b.generate());
    }
}
