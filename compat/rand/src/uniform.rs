//! Uniform range sampling, following rand 0.8's algorithms: widening
//! multiply with rejection for integers, the exponent trick for floats.

use crate::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

/// Types usable with `Rng::gen_range`.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_single_excl<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    fn sample_single_incl<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range argument accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_single_excl(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty inclusive range");
        T::sample_single_incl(low, high, rng)
    }
}

/// Widening multiply: returns (hi, lo) of the double-width product.
trait WideningMul: Sized {
    fn wmul(self, other: Self) -> (Self, Self);
}

impl WideningMul for u32 {
    fn wmul(self, other: Self) -> (Self, Self) {
        let t = self as u64 * other as u64;
        ((t >> 32) as u32, t as u32)
    }
}

impl WideningMul for u64 {
    fn wmul(self, other: Self) -> (Self, Self) {
        let t = self as u128 * other as u128;
        ((t >> 64) as u64, t as u64)
    }
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty) => {
        impl SampleUniform for $ty {
            fn sample_single_excl<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let range = high.wrapping_sub(low) as $unsigned as $u_large;
                uniform_int_sample::<$ty, $u_large, R>(low, range, rng)
            }

            fn sample_single_incl<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    // The full integer domain: every draw is acceptable.
                    return rng.gen::<$u_large>() as $ty;
                }
                uniform_int_sample::<$ty, $u_large, R>(low, range, rng)
            }
        }

        impl UniformIntHelper<$u_large> for $ty {
            const SMALL_UNSIGNED: bool = <$unsigned>::MAX as u128 <= u16::MAX as u128;

            fn add_wrapping(self, v: $u_large) -> Self {
                self.wrapping_add(v as $ty)
            }
        }
    };
}

/// Per-type constants/conversions for the shared rejection loop.
trait UniformIntHelper<L>: Copy {
    const SMALL_UNSIGNED: bool;
    fn add_wrapping(self, v: L) -> Self;
}

macro_rules! uniform_int_sample_fn {
    ($name:ident, $large:ty) => {
        fn $name<T, R>(low: T, range: $large, rng: &mut R) -> T
        where
            T: UniformIntHelper<$large>,
            R: RngCore + ?Sized,
            $large: WideningMul + crate::Standard,
        {
            // rand 0.8: small types compute the zone by modulo, larger ones
            // by the leading-zeros shortcut.
            let zone = if T::SMALL_UNSIGNED {
                let ints_to_reject = (<$large>::MAX - range + 1) % range;
                <$large>::MAX - ints_to_reject
            } else {
                (range << range.leading_zeros()).wrapping_sub(1)
            };
            loop {
                let v: $large = rng.gen();
                let (hi, lo) = v.wmul(range);
                if lo <= zone {
                    return low.add_wrapping(hi);
                }
            }
        }
    };
}

uniform_int_sample_fn!(uniform_int_sample_u32, u32);
uniform_int_sample_fn!(uniform_int_sample_u64, u64);

// Dispatch on the "large" draw type via a small shim so the macro above
// stays readable.
fn uniform_int_sample<T, L, R>(low: T, range: L, rng: &mut R) -> T
where
    T: UniformIntHelper<L>,
    L: LargeDraw<T>,
    R: RngCore + ?Sized,
{
    L::run(low, range, rng)
}

trait LargeDraw<T>: Sized {
    fn run<R: RngCore + ?Sized>(low: T, range: Self, rng: &mut R) -> T;
}

impl<T: UniformIntHelper<u32>> LargeDraw<T> for u32 {
    fn run<R: RngCore + ?Sized>(low: T, range: Self, rng: &mut R) -> T {
        uniform_int_sample_u32(low, range, rng)
    }
}

impl<T: UniformIntHelper<u64>> LargeDraw<T> for u64 {
    fn run<R: RngCore + ?Sized>(low: T, range: Self, rng: &mut R) -> T {
        uniform_int_sample_u64(low, range, rng)
    }
}

uniform_int_impl!(u8, u8, u32);
uniform_int_impl!(u16, u16, u32);
uniform_int_impl!(u32, u32, u32);
uniform_int_impl!(u64, u64, u64);
uniform_int_impl!(usize, usize, u64);
uniform_int_impl!(i8, u8, u32);
uniform_int_impl!(i16, u16, u32);
uniform_int_impl!(i32, u32, u32);
uniform_int_impl!(i64, u64, u64);
uniform_int_impl!(isize, usize, u64);

/// `[1, 2)` from 52 random fraction bits (rand's exponent trick).
fn f64_value1_2<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12))
}

impl SampleUniform for f64 {
    fn sample_single_excl<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        // rand 0.8 UniformFloat::sample_single.
        let scale = high - low;
        let offset = low - scale;
        f64_value1_2(rng) * scale + offset
    }

    fn sample_single_incl<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        // rand 0.8 new_inclusive: scale chosen so the maximum draw hits
        // `high`, shrinking by one ULP while it overshoots.
        let max_rand = f64::from_bits((1023u64 << 52) | (u64::MAX >> 12)) - 1.0;
        let mut scale = (high - low) / max_rand;
        loop {
            let mask = scale * max_rand + low;
            if mask <= high {
                break;
            }
            scale = prev_f64(scale);
        }
        let value0_1 = f64_value1_2(rng) - 1.0;
        value0_1 * scale + low
    }
}

impl SampleUniform for f32 {
    fn sample_single_excl<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        let scale = high - low;
        let offset = low - scale;
        let value1_2 = f32::from_bits((127u32 << 23) | (rng.next_u32() >> 9));
        value1_2 * scale + offset
    }

    fn sample_single_incl<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        let max_rand = f32::from_bits((127u32 << 23) | (u32::MAX >> 9)) - 1.0;
        let mut scale = (high - low) / max_rand;
        loop {
            let mask = scale * max_rand + low;
            if mask <= high {
                break;
            }
            scale = f32::from_bits(scale.to_bits() - 1);
        }
        let value1_2 = f32::from_bits((127u32 << 23) | (rng.next_u32() >> 9));
        (value1_2 - 1.0) * scale + low
    }
}

fn prev_f64(v: f64) -> f64 {
    f64::from_bits(v.to_bits() - 1)
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn integer_ranges_uniformish() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn inclusive_integer_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match rng.gen_range(0u8..=2) {
                0 => lo_seen = true,
                2 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn inclusive_float_range_stays_inside() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.9..=1.0);
            assert!((0.9..=1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn signed_ranges_work() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let v = rng.gen_range(-200_000i64..200_000);
            assert!((-200_000..200_000).contains(&v));
        }
    }
}
