//! Offline drop-in subset of the `bytes` crate.
//!
//! `Bytes` is a cheaply clonable, immutable byte buffer (`Arc<[u8]>`
//! underneath); `BytesMut` a growable builder that freezes into one.
//! Only the surface this workspace uses is provided.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

macro_rules! fmt_bytes_debug {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "b\"")?;
            for &b in self.0.iter() {
                if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\x{b:02x}")?;
                }
            }
            write!(f, "\"")
        }
    };
}

/// Immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Self {
        Self(Arc::from(&[][..]))
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Self(Arc::from(data))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// Owned sub-range (the real crate shares; copying is fine here).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Self(Arc::from(&self.0[range]))
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self(Arc::from(v))
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0[..] == other.0[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.0[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.0[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.0[..] == other[..]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.0[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0[..].cmp(&other.0[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fmt_bytes_debug!();
}

/// Growable byte builder. Big-endian multi-byte puts, as in `bytes`.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        Self(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes(Arc::from(self.0))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for BytesMut {
    fmt_bytes_debug!();
}

/// Byte-sink trait (subset of `bytes::BufMut`); implemented for
/// `BytesMut` and `Vec<u8>`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip_big_endian() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_slice(&[4, 5]);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3, 4, 5]);
        assert_eq!(frozen.len(), 5);
    }

    #[test]
    fn bytes_equality_and_clone_share() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, [1u8, 2, 3]);
        assert_eq!(Bytes::from_static(b"xy"), Bytes::copy_from_slice(b"xy"));
    }

    #[test]
    fn debug_escapes_nonprintable() {
        let s = format!("{:?}", Bytes::from(vec![b'a', 0x00]));
        assert_eq!(s, "b\"a\\x00\"");
    }
}
