//! Offline drop-in stub of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of types
//! but never serializes anything (there is no `serde_json` or other
//! format crate in the tree), so inert marker traits plus no-op derive
//! macros satisfy every use site.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
